(* Tests for code generation: the "actual" shared-memory allocator
   (double buffering, padding, softmax statistics, fallback), the
   compile pipeline, and the Triton source emitter. *)

open Mcf_ir

let a100 = Mcf_gpu.Spec.a100
let gemm = Chain.gemm_chain ~m:1024 ~n:1024 ~k:512 ~h:512 ()
let attn = Chain.attention ~heads:8 ~m:512 ~n:512 ~k:64 ~h:64 ()
let ax c s = Chain.axis c s

let gemm_cand tiles =
  Candidate.make
    (Tiling.Deep [ ax gemm "m"; ax gemm "h"; ax gemm "n"; ax gemm "k" ])
    tiles

let attn_cand tiles =
  Candidate.make
    (Tiling.Deep [ ax attn "m"; ax attn "h"; ax attn "n"; ax attn "k" ])
    tiles

let std = [ ("m", 128); ("n", 64); ("k", 32); ("h", 64) ]
let lower chain c = Lower.lower ~elem_bytes:2 chain c

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- Alloc ----------------------------------------------------------------- *)

let test_alloc_exceeds_estimate () =
  let l = lower gemm (gemm_cand std) in
  let est = Mcf_model.Shmem.estimate_bytes l in
  let actual = Mcf_codegen.Alloc.actual_bytes a100 l in
  Alcotest.(check bool) "actual >= estimate (padding, staging)" true
    (actual >= est)

let test_alloc_detail_consistent () =
  let l = lower gemm (gemm_cand std) in
  let d = Mcf_codegen.Alloc.detail a100 l in
  Alcotest.(check int) "total = parts"
    (d.tiles_bytes + d.double_buffer_bytes + d.softmax_bytes)
    d.total_bytes

let test_alloc_double_buffering () =
  let l = lower gemm (gemm_cand std) in
  let d = Mcf_codegen.Alloc.detail a100 l in
  (* A and B stream inside the k loop, D inside n: staged copies exist *)
  Alcotest.(check bool) "double buffers allocated" true
    (d.double_buffer_bytes > 0)

let test_alloc_db_fallback () =
  (* near the device limit the allocator must drop to single buffering *)
  let l = lower gemm (gemm_cand [ ("m", 128); ("n", 512); ("k", 128); ("h", 128) ]) in
  let d = Mcf_codegen.Alloc.detail a100 l in
  if d.tiles_bytes * 2 > a100.smem_per_block then
    Alcotest.(check int) "fallback to single buffering" 0 d.double_buffer_bytes
  else Alcotest.(check bool) "fits with staging" true (d.total_bytes <= a100.smem_per_block)

let test_alloc_softmax_stats () =
  let lg = lower gemm (gemm_cand std) in
  let la = lower attn (attn_cand [ ("m", 128); ("n", 64); ("k", 64); ("h", 64) ]) in
  Alcotest.(check int) "no stats for plain chains" 0
    (Mcf_codegen.Alloc.detail a100 lg).softmax_bytes;
  (* 3 fp32 vectors of tile_m rows *)
  Alcotest.(check int) "stats for softmax rows" (3 * 4 * 128)
    (Mcf_codegen.Alloc.detail a100 la).softmax_bytes

let test_alloc_row_padding () =
  (* padded bytes include row_pad per tile row; the E accumulator (128x64 =
     8 Ki elements) lives in registers and leaves shared memory entirely *)
  let l = lower gemm (gemm_cand std) in
  let d = Mcf_codegen.Alloc.detail a100 l in
  let unpadded = Mcf_model.Shmem.estimate_bytes l in
  let e_bytes = 128 * 64 * 2 in
  (* smem rows: A 128 + B 32 + C 128 + D 64 = 352 rows x 16 B *)
  Alcotest.(check int) "padding accounted" (unpadded - e_bytes + (352 * 16))
    d.tiles_bytes

let test_alloc_register_accumulator () =
  (* a small output accumulator is exempt from shared memory; a huge one
     (flat row-block beyond the register budget) is not *)
  let small = lower gemm (gemm_cand std) in
  let flat =
    lower gemm
      (Candidate.make
         (Tiling.Flat
            ([ ax gemm "m"; ax gemm "n" ], [ [ ax gemm "k" ]; [ ax gemm "h" ] ]))
         [ ("m", 128); ("n", 64); ("k", 32); ("h", 64) ])
  in
  (* flat keeps 128 x 512 = 64 Ki accumulator elements resident: > budget *)
  let d_small = Mcf_codegen.Alloc.detail a100 small in
  let d_flat = Mcf_codegen.Alloc.detail a100 flat in
  Alcotest.(check bool) "row-block spills to smem" true
    (d_flat.tiles_bytes > d_small.tiles_bytes + (128 * 448 * 2))

(* --- Compile ---------------------------------------------------------------- *)

let test_compile_ok () =
  match Mcf_codegen.Compile.compile_candidate a100 gemm (gemm_cand std) with
  | Ok kernel ->
    Alcotest.(check bool) "smem recorded" true (kernel.Mcf_gpu.Kernel.smem_bytes > 0);
    Alcotest.(check int) "grid" 64 kernel.Mcf_gpu.Kernel.blocks
  | Error e ->
    Alcotest.failf "compile failed: %s" (Mcf_codegen.Compile.string_of_error e)

let test_compile_launch_impossible () =
  let huge = gemm_cand [ ("m", 1024); ("n", 512); ("k", 32); ("h", 512) ] in
  match Mcf_codegen.Compile.compile_candidate a100 gemm huge with
  | Error (Mcf_codegen.Compile.Launch_impossible { smem; limit }) ->
    Alcotest.(check bool) "over limit" true (smem > limit)
  | Ok _ -> Alcotest.fail "expected launch failure"
  | Error (Mcf_codegen.Compile.Invalid_schedule _) ->
    Alcotest.fail "wrong error kind"

let test_compile_invalid_schedule () =
  let bad =
    Candidate.make
      (Tiling.Deep [ ax attn "m"; ax attn "h"; ax attn "k"; ax attn "n" ])
      [ ("m", 128); ("n", 64); ("k", 16); ("h", 64) ]
  in
  match Mcf_codegen.Compile.compile_candidate a100 attn bad with
  | Error (Mcf_codegen.Compile.Invalid_schedule _) -> ()
  | Ok _ -> Alcotest.fail "partial-softmax schedule must not compile"
  | Error (Mcf_codegen.Compile.Launch_impossible _) ->
    Alcotest.fail "wrong error kind"

let test_compiled_kernel_runs () =
  match Mcf_codegen.Compile.compile_candidate a100 gemm (gemm_cand std) with
  | Ok kernel -> (
    match Mcf_gpu.Sim.run a100 kernel with
    | Ok v -> Alcotest.(check bool) "simulates" true (v.time_s > 0.0)
    | Error e -> Alcotest.failf "sim failed: %s" (Mcf_gpu.Sim.string_of_error e))
  | Error _ -> Alcotest.fail "compile failed"

(* --- Emit ------------------------------------------------------------------- *)

let triton chain cand =
  Mcf_codegen.Emit.triton_kernel (Program.build chain cand)

let test_emit_gemm_structure () =
  let src = triton gemm (gemm_cand std) in
  Alcotest.(check bool) "jit decorator" true (contains src "@triton.jit");
  Alcotest.(check bool) "loads inputs" true (contains src "tl.load(A_ptr");
  Alcotest.(check bool) "dot products" true (contains src "tl.dot(");
  Alcotest.(check bool) "stores output" true (contains src "tl.store(E_ptr");
  Alcotest.(check bool) "grid decomposition" true (contains src "tl.program_id");
  Alcotest.(check bool) "loops over n" true (contains src "for n_i in range(16)")

let test_emit_attention_online () =
  let src = triton attn (attn_cand [ ("m", 128); ("n", 64); ("k", 64); ("h", 64) ]) in
  Alcotest.(check bool) "running max" true (contains src "m_i = tl.full");
  Alcotest.(check bool) "online update" true (contains src "online softmax update");
  Alcotest.(check bool) "consumer rescale" true (contains src "o_acc *= corr");
  Alcotest.(check bool) "exp" true (contains src "tl.exp")

let test_emit_accumulate_vs_assign () =
  (* with the k loop dead the first dot assigns; with k live it accumulates *)
  let dead = triton gemm (gemm_cand [ ("m", 128); ("n", 64); ("k", 512); ("h", 64) ]) in
  Alcotest.(check bool) "assign when reduction collapsed" true
    (contains dead "c_acc = tl.dot(");
  let live = triton gemm (gemm_cand std) in
  Alcotest.(check bool) "accumulate when loop live" true
    (contains live "c_acc += tl.dot(")

let test_emit_flat_sequential_groups () =
  let cand =
    Candidate.make
      (Tiling.Flat
         ([ ax gemm "m"; ax gemm "n" ], [ [ ax gemm "k" ]; [ ax gemm "h" ] ]))
      std
  in
  let src = triton gemm cand in
  Alcotest.(check bool) "n loop" true (contains src "for n_i in range");
  Alcotest.(check bool) "k group" true (contains src "for k_i in range");
  Alcotest.(check bool) "h group" true (contains src "for h_i in range");
  (* the producer's dot must appear before the consumer's in source order *)
  let idx sub =
    let n = String.length src and m = String.length sub in
    let rec go i = if i + m > n then -1 else if String.sub src i m = sub then i else go (i + 1) in
    go 0
  in
  Alcotest.(check bool) "C before E" true
    (idx "c_acc" >= 0 && idx "e_acc" >= 0 && idx "c_acc" < idx "e_acc")

let test_launch_stub () =
  let p = Program.build gemm (gemm_cand std) in
  let stub = Mcf_codegen.Emit.launch_stub p in
  Alcotest.(check bool) "grid size" true (contains stub "grid = (64,)");
  Alcotest.(check bool) "tile constants" true (contains stub "TM = 128")

let () =
  Alcotest.run "mcf_codegen"
    [ ( "alloc",
        [ Alcotest.test_case "actual >= estimate" `Quick
            test_alloc_exceeds_estimate;
          Alcotest.test_case "detail sums" `Quick test_alloc_detail_consistent;
          Alcotest.test_case "double buffering" `Quick
            test_alloc_double_buffering;
          Alcotest.test_case "staging fallback" `Quick test_alloc_db_fallback;
          Alcotest.test_case "softmax stats" `Quick test_alloc_softmax_stats;
          Alcotest.test_case "row padding" `Quick test_alloc_row_padding;
          Alcotest.test_case "register accumulator" `Quick
            test_alloc_register_accumulator ] );
      ( "compile",
        [ Alcotest.test_case "ok path" `Quick test_compile_ok;
          Alcotest.test_case "launch impossible" `Quick
            test_compile_launch_impossible;
          Alcotest.test_case "invalid schedule" `Quick
            test_compile_invalid_schedule;
          Alcotest.test_case "kernel simulates" `Quick test_compiled_kernel_runs ]
      );
      ( "emit",
        [ Alcotest.test_case "gemm structure" `Quick test_emit_gemm_structure;
          Alcotest.test_case "attention online" `Quick
            test_emit_attention_online;
          Alcotest.test_case "accumulate vs assign" `Quick
            test_emit_accumulate_vs_assign;
          Alcotest.test_case "flat sequential groups" `Quick
            test_emit_flat_sequential_groups;
          Alcotest.test_case "launch stub" `Quick test_launch_stub ] ) ]
