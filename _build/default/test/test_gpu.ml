(* Tests for the GPU substrate: hardware specs, the kernel cost simulator
   (occupancy, waves, bounds, failure modes) and the virtual clock. *)

module Spec = Mcf_gpu.Spec
module Kernel = Mcf_gpu.Kernel
module Sim = Mcf_gpu.Sim
module Clock = Mcf_gpu.Clock

let a100 = Spec.a100

let base_kernel =
  { Kernel.kname = "k";
    blocks = 256;
    smem_bytes = 32 * 1024;
    accesses =
      [ { Kernel.label = "A";
          bytes_per_block = 1.0e5;
          unique_bytes = 2.56e7;
          row_bytes = 256;
          direction = Kernel.Load };
        { Kernel.label = "C";
          bytes_per_block = 5.0e4;
          unique_bytes = 1.28e7;
          row_bytes = 256;
          direction = Kernel.Store } ];
    computes =
      [ { Kernel.clabel = "C";
          flops_per_block = 1.0e8;
          tile_m = 128;
          tile_n = 128;
          tile_k = 64 } ];
    stmt_trips_per_block = 64.0 }

let time k = Sim.time_exn ~noise:false a100 k

(* --- Spec ---------------------------------------------------------------- *)

let test_spec_lookup () =
  Alcotest.(check bool) "a100" true (Spec.by_name "a100" <> None);
  Alcotest.(check bool) "case insensitive" true (Spec.by_name "RTX3080" <> None);
  Alcotest.(check bool) "unknown" true (Spec.by_name "h100" = None)

let test_spec_roofline () =
  Alcotest.(check (float 1.0)) "A100 P/W" 200.6 (Spec.roofline_ratio a100);
  Alcotest.(check bool) "3080 lower peak" true
    (Spec.rtx3080.peak_flops < a100.peak_flops)

let test_spec_fields () =
  Alcotest.(check int) "A100 SMs" 108 a100.sm_count;
  Alcotest.(check string) "sm86" "sm86" Spec.rtx3080.compute_capability;
  Alcotest.(check int) "fp16 elements" 2 a100.elem_bytes

(* --- Sim: failure modes -------------------------------------------------- *)

let test_smem_overflow () =
  let k = { base_kernel with Kernel.smem_bytes = a100.smem_per_block + 1 } in
  match Sim.run a100 k with
  | Error (Sim.Smem_overflow { used; limit }) ->
    Alcotest.(check int) "used" (a100.smem_per_block + 1) used;
    Alcotest.(check int) "limit" a100.smem_per_block limit
  | Ok _ | Error Sim.Empty_grid -> Alcotest.fail "expected overflow"

let test_empty_grid () =
  match Sim.run a100 { base_kernel with Kernel.blocks = 0 } with
  | Error Sim.Empty_grid -> ()
  | _ -> Alcotest.fail "expected empty grid error"

(* --- Sim: monotonicity and structure ------------------------------------- *)

let test_more_traffic_slower () =
  let heavier =
    { base_kernel with
      Kernel.accesses =
        List.map
          (fun (a : Kernel.access) ->
            { a with bytes_per_block = a.bytes_per_block *. 4.0;
                     unique_bytes = a.unique_bytes *. 4.0 })
          base_kernel.accesses }
  in
  Alcotest.(check bool) "4x traffic strictly slower" true
    (time heavier > time base_kernel)

let test_more_flops_slower () =
  let heavier =
    { base_kernel with
      Kernel.computes =
        List.map
          (fun (c : Kernel.compute) ->
            { c with flops_per_block = c.flops_per_block *. 50.0 })
          base_kernel.computes }
  in
  Alcotest.(check bool) "more flops slower" true
    (time heavier > time base_kernel)

let test_launch_overhead_floor () =
  let tiny =
    { base_kernel with
      Kernel.blocks = 1;
      accesses = [];
      computes = [];
      stmt_trips_per_block = 0.0 }
  in
  Alcotest.(check bool) "at least launch latency" true
    (time tiny >= a100.launch_overhead_s)

let test_occupancy_from_smem () =
  let v k =
    match Sim.run ~noise:false a100 k with
    | Ok v -> v
    | Error e -> Alcotest.failf "sim error: %s" (Sim.string_of_error e)
  in
  let small = v { base_kernel with Kernel.smem_bytes = 16 * 1024 } in
  let big = v { base_kernel with Kernel.smem_bytes = 120 * 1024 } in
  Alcotest.(check bool) "smem limits blocks in flight" true
    (big.blocks_in_flight < small.blocks_in_flight);
  Alcotest.(check bool) "more waves when fewer in flight" true
    (big.waves >= small.waves)

let test_wave_count () =
  let v =
    match Sim.run ~noise:false a100 { base_kernel with Kernel.blocks = 108 } with
    | Ok v -> v
    | Error _ -> Alcotest.fail "sim error"
  in
  Alcotest.(check int) "one wave when blocks <= in flight" 1 v.waves

let test_bound_classification () =
  let mem_kernel =
    { base_kernel with
      Kernel.computes = [];
      accesses =
        [ { Kernel.label = "A";
            bytes_per_block = 1.0e6;
            unique_bytes = 2.56e8;
            row_bytes = 256;
            direction = Kernel.Load } ] }
  in
  let comp_kernel =
    { base_kernel with
      Kernel.accesses = [];
      computes =
        [ { Kernel.clabel = "C";
            flops_per_block = 1.0e10;
            tile_m = 128;
            tile_n = 128;
            tile_k = 64 } ] }
  in
  (match Sim.run ~noise:false a100 mem_kernel with
  | Ok v -> Alcotest.(check bool) "memory bound" true (v.bound = Sim.Memory)
  | Error _ -> Alcotest.fail "sim error");
  match Sim.run ~noise:false a100 comp_kernel with
  | Ok v -> Alcotest.(check bool) "compute bound" true (v.bound = Sim.Compute)
  | Error _ -> Alcotest.fail "sim error"

let test_noise_deterministic () =
  let t1 = Sim.time_exn a100 base_kernel in
  let t2 = Sim.time_exn a100 base_kernel in
  Alcotest.(check (float 0.0)) "same kernel same noise" t1 t2;
  let clean = time base_kernel in
  Alcotest.(check bool) "noise within 3%" true
    (Float.abs (t1 -. clean) /. clean <= 0.031)

let test_noise_differs_across_kernels () =
  let k2 = { base_kernel with Kernel.kname = "other" } in
  let r1 = Sim.time_exn a100 base_kernel /. time base_kernel in
  let r2 = Sim.time_exn a100 k2 /. time k2 in
  Alcotest.(check bool) "fingerprint changes noise" true (r1 <> r2)

let test_devices_differ () =
  let ta = Sim.time_exn ~noise:false a100 base_kernel in
  let tr = Sim.time_exn ~noise:false Spec.rtx3080 base_kernel in
  Alcotest.(check bool) "A100 faster" true (ta < tr)

let test_l2_reuse_discount () =
  (* re-reads beyond the unique footprint get discounted when the footprint
     fits in L2 *)
  let fits =
    { base_kernel with
      Kernel.accesses =
        [ { Kernel.label = "A";
            bytes_per_block = 1.0e6;
            unique_bytes = 1.0e6 (* 1 MB fits L2; rest are re-reads *);
            row_bytes = 256;
            direction = Kernel.Load } ] }
  in
  let misses =
    { fits with
      Kernel.accesses =
        [ { Kernel.label = "A";
            bytes_per_block = 1.0e6;
            unique_bytes = 2.56e8 (* everything unique: all DRAM *);
            row_bytes = 256;
            direction = Kernel.Load } ] }
  in
  Alcotest.(check bool) "L2 reuse is faster" true (time fits < time misses)

let test_coalesce_efficiency () =
  Alcotest.(check (float 1e-9)) "wide rows full bw" 1.0
    (Sim.coalesce_efficiency ~row_bytes:256);
  Alcotest.(check bool) "narrow rows penalized" true
    (Sim.coalesce_efficiency ~row_bytes:32 < 0.7)

let test_tc_efficiency () =
  let big = Sim.tensor_core_efficiency ~m:128 ~n:128 ~k:64 in
  let small = Sim.tensor_core_efficiency ~m:16 ~n:16 ~k:16 in
  Alcotest.(check bool) "big tiles better" true (big > small);
  Alcotest.(check bool) "never exceeds 0.9" true (big <= 0.9);
  Alcotest.(check bool) "small tiles above 0.3" true (small > 0.3)

let test_run_sequence () =
  let t1 = Sim.time_exn a100 base_kernel in
  match Sim.run_sequence a100 [ base_kernel; base_kernel ] with
  | Ok t -> Alcotest.(check (float 1e-12)) "sums" (2.0 *. t1) t
  | Error _ -> Alcotest.fail "sequence failed"

let test_run_sequence_error () =
  let bad = { base_kernel with Kernel.smem_bytes = 10_000_000 } in
  match Sim.run_sequence a100 [ base_kernel; bad ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected failure"

let test_kernel_totals () =
  Alcotest.(check (float 1.0)) "total flops" (1.0e8 *. 256.0)
    (Kernel.total_flops base_kernel);
  Alcotest.(check (float 1.0)) "total bytes" (1.5e5 *. 256.0)
    (Kernel.total_bytes base_kernel)

let test_fingerprint_sensitivity () =
  let k2 = { base_kernel with Kernel.blocks = 257 } in
  Alcotest.(check bool) "blocks in fingerprint" true
    (Kernel.fingerprint base_kernel <> Kernel.fingerprint k2)

let test_per_block_bandwidth_cap () =
  (* the same total traffic is slower when one block must move it alone *)
  let total = 1.0e8 in
  let mk blocks =
    { base_kernel with
      Kernel.blocks;
      computes = [];
      stmt_trips_per_block = 0.0;
      accesses =
        [ { Kernel.label = "A";
            bytes_per_block = total /. float_of_int blocks;
            unique_bytes = total;
            row_bytes = 256;
            direction = Kernel.Load } ] }
  in
  Alcotest.(check bool) "single block cannot saturate DRAM" true
    (time (mk 1) > 2.0 *. time (mk 256))

let test_explain () =
  let s = Sim.explain a100 base_kernel in
  let has sub =
    let ns = String.length s and msub = String.length sub in
    let rec go i = i + msub <= ns && (String.sub s i msub = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "names kernel" true (has "k on A100");
  Alcotest.(check bool) "shows bound" true (has "bound");
  Alcotest.(check bool) "per-access lines" true (has "effective DRAM");
  let bad = { base_kernel with Kernel.smem_bytes = 10_000_000 } in
  Alcotest.(check bool) "failure explained" true
    (let s = Sim.explain a100 bad in
     let ns = String.length s in
     ns > 0 && (let sub = "DOES NOT LAUNCH" in
                let msub = String.length sub in
                let rec go i = i + msub <= ns && (String.sub s i msub = sub || go (i + 1)) in
                go 0))

(* --- Clock --------------------------------------------------------------- *)

let test_clock () =
  let c = Clock.create () in
  Alcotest.(check (float 0.0)) "starts at zero" 0.0 (Clock.elapsed_s c);
  Clock.charge c 2.5;
  Clock.charge_compile c ~toolchain_s:1.5;
  Alcotest.(check (float 1e-9)) "accumulates" 4.0 (Clock.elapsed_s c);
  Clock.charge c (-5.0);
  Alcotest.(check (float 1e-9)) "negative charges ignored" 4.0
    (Clock.elapsed_s c);
  Clock.reset c;
  Alcotest.(check (float 0.0)) "reset" 0.0 (Clock.elapsed_s c)

let test_clock_measure () =
  let c = Clock.create () in
  Clock.charge_measure c ~kernel_time_s:1e-3 ~repeats:10;
  Alcotest.(check bool) "session overhead + repeats" true
    (Clock.elapsed_s c >= 0.01 && Clock.elapsed_s c < 0.02)

let test_wall_clock () =
  let r, w = Clock.with_wall_clock (fun () -> 42) in
  Alcotest.(check int) "result" 42 r;
  Alcotest.(check bool) "non-negative time" true (w >= 0.0)

(* --- properties ---------------------------------------------------------- *)

let prop_sim_time_positive =
  QCheck.Test.make ~count:100 ~name:"sim time always positive"
    QCheck.(triple (int_range 1 10000) (float_range 0.0 1e7) (float_range 0.0 1e9))
    (fun (blocks, bytes, flops) ->
      let k =
        { base_kernel with
          Kernel.blocks;
          accesses =
            [ { Kernel.label = "x";
                bytes_per_block = bytes;
                unique_bytes = bytes *. float_of_int blocks;
                row_bytes = 128;
                direction = Kernel.Load } ];
          computes =
            [ { Kernel.clabel = "c";
                flops_per_block = flops;
                tile_m = 64;
                tile_n = 64;
                tile_k = 32 } ] }
      in
      match Sim.run a100 k with
      | Ok v -> v.time_s > 0.0 && Float.is_finite v.time_s
      | Error _ -> false)

let prop_more_blocks_not_faster =
  QCheck.Test.make ~count:50 ~name:"scaling grid scales time sublinearly"
    QCheck.(int_range 1 6)
    (fun mult ->
      let k n = { base_kernel with Kernel.blocks = 108 * n } in
      let t1 = time (k 1) and tn = time (k mult) in
      tn >= t1 -. 1e-12 && tn <= (t1 *. float_of_int mult) +. 1e-9)

let () =
  Alcotest.run "mcf_gpu"
    [ ( "spec",
        [ Alcotest.test_case "lookup" `Quick test_spec_lookup;
          Alcotest.test_case "roofline" `Quick test_spec_roofline;
          Alcotest.test_case "fields" `Quick test_spec_fields ] );
      ( "sim-errors",
        [ Alcotest.test_case "smem overflow" `Quick test_smem_overflow;
          Alcotest.test_case "empty grid" `Quick test_empty_grid ] );
      ( "sim-model",
        [ Alcotest.test_case "traffic monotone" `Quick test_more_traffic_slower;
          Alcotest.test_case "flops monotone" `Quick test_more_flops_slower;
          Alcotest.test_case "launch floor" `Quick test_launch_overhead_floor;
          Alcotest.test_case "occupancy from smem" `Quick
            test_occupancy_from_smem;
          Alcotest.test_case "wave count" `Quick test_wave_count;
          Alcotest.test_case "bound classification" `Quick
            test_bound_classification;
          Alcotest.test_case "noise deterministic" `Quick
            test_noise_deterministic;
          Alcotest.test_case "noise per kernel" `Quick
            test_noise_differs_across_kernels;
          Alcotest.test_case "devices differ" `Quick test_devices_differ;
          Alcotest.test_case "L2 reuse" `Quick test_l2_reuse_discount;
          Alcotest.test_case "coalescing" `Quick test_coalesce_efficiency;
          Alcotest.test_case "tensor cores" `Quick test_tc_efficiency;
          Alcotest.test_case "run_sequence" `Quick test_run_sequence;
          Alcotest.test_case "run_sequence error" `Quick
            test_run_sequence_error;
          Alcotest.test_case "kernel totals" `Quick test_kernel_totals;
          Alcotest.test_case "fingerprint" `Quick test_fingerprint_sensitivity;
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "per-block bandwidth cap" `Quick
            test_per_block_bandwidth_cap ] );
      ( "clock",
        [ Alcotest.test_case "accumulate/reset" `Quick test_clock;
          Alcotest.test_case "measure session" `Quick test_clock_measure;
          Alcotest.test_case "wall clock" `Quick test_wall_clock ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sim_time_positive; prop_more_blocks_not_faster ] ) ]
