(* Integration tests for the experiment harness: each paper artifact's
   computation must produce structurally-sound results with the paper's
   qualitative shape (who wins, which direction trends go).  Ansor's trial
   budget is reduced so the suite stays fast; the accounting logic is the
   same. *)

let a100 = Mcf_gpu.Spec.a100

let () = Mcf_baselines.Ansor.trials := 100

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- registry ----------------------------------------------------------------- *)

let test_registry_complete () =
  let ids = Mcf_experiments.Registry.ids () in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " registered") true (List.mem id ids))
    [ "motivation"; "fig2"; "fig7"; "fig8a"; "fig8b"; "fig8c"; "fig8d";
      "fig9"; "tab4"; "fig10"; "fig11"; "ablation"; "sweep"; "verify";
      "extension" ];
  Alcotest.(check int) "no duplicates" (List.length ids)
    (List.length (Mcf_util.Listx.dedup ~compare:String.compare ids))

let test_registry_find () =
  Alcotest.(check bool) "finds fig7" true
    (Mcf_experiments.Registry.find "fig7" <> None);
  Alcotest.(check bool) "unknown is None" true
    (Mcf_experiments.Registry.find "fig99" = None)

(* --- motivation ---------------------------------------------------------------- *)

let test_motivation_trend () =
  let rows =
    Mcf_experiments.Exp_motivation.compute a100 Mcf_workloads.Configs.bert_large
  in
  Alcotest.(check int) "three sequence lengths" 3 (List.length rows);
  List.iter
    (fun (r : Mcf_experiments.Exp_motivation.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "seq %d: time share amplifies FLOPs share" r.seq)
        true
        (r.time_share > 1.5 *. r.flops_share);
      Alcotest.(check bool)
        (Printf.sprintf "seq %d: attention is MBCI" r.seq)
        true
        (r.attention_intensity < Mcf_gpu.Spec.roofline_ratio a100))
    rows;
  (* the share of time grows with sequence length, as in the paper *)
  let shares = List.map (fun (r : Mcf_experiments.Exp_motivation.row) -> r.time_share) rows in
  Alcotest.(check bool) "monotone in sequence length" true
    (List.sort Float.compare shares = shares)

(* --- sweep ---------------------------------------------------------------------- *)

let test_sweep_always_wins () =
  let rows = Mcf_experiments.Exp_sweep.compute a100 in
  Alcotest.(check int) "five lengths" 5 (List.length rows);
  List.iter
    (fun (r : Mcf_experiments.Exp_sweep.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "seq %d fusion wins" r.seq)
        true (r.speedup > 1.0);
      Alcotest.(check bool)
        (Printf.sprintf "seq %d memory bound" r.seq)
        true
        (r.intensity < Mcf_gpu.Spec.roofline_ratio a100))
    rows

(* --- fig2 ---------------------------------------------------------------------- *)

let test_fig2_transition () =
  let points = Mcf_experiments.Exp_fig2.compute a100 in
  Alcotest.(check int) "six sweep points" 6 (List.length points);
  let sorted = List.sort (fun a b -> Float.compare a.Mcf_experiments.Exp_fig2.ratio b.ratio) points in
  let first = List.hd sorted in
  let mid = List.nth sorted 3 in
  Alcotest.(check bool) "phi grows with K/M" true (first.phi < mid.phi);
  Alcotest.(check bool) "throughput collapses at low K/M" true
    (first.achieved_tflops < 0.5 *. mid.achieved_tflops);
  List.iter
    (fun (p : Mcf_experiments.Exp_fig2.point) ->
      Alcotest.(check bool) "constant work" true (p.m * p.m * p.k = 1 lsl 30))
    points

(* --- fig7 ---------------------------------------------------------------------- *)

let test_fig7_funnel () =
  let f = Mcf_experiments.Exp_fig7.compute a100 in
  Alcotest.(check int) "26 expressions" 26 f.tilings_raw;
  Alcotest.(check (float 1.0)) "paper's raw space" 1.09051904e8 f.candidates_raw;
  Alcotest.(check bool) "four orders of magnitude pruned" true
    (float_of_int f.candidates_valid < 1e-4 *. f.candidates_raw)

(* --- fig8 (attention panel only: fast, richest backend set) ------------------- *)

let test_fig8_attention_panel () =
  let r = Mcf_experiments.Exp_fig8.compute a100 Mcf_experiments.Exp_fig8.Attention in
  Alcotest.(check int) "nine workloads" 9 (List.length r.rows);
  (* MCFuser must beat PyTorch on every attention workload *)
  List.iter
    (fun (row : Mcf_experiments.Exp_fig8.row) ->
      match
        (List.assoc "PyTorch" row.times, List.assoc "MCFuser" row.times)
      with
      | Some p, Some m ->
        Alcotest.(check bool) (row.workload ^ ": MCFuser wins") true (m < p)
      | _ -> Alcotest.failf "%s: missing baseline" row.workload)
    r.rows;
  (* BOLT has no attention numbers (no fusion pattern) *)
  List.iter
    (fun (row : Mcf_experiments.Exp_fig8.row) ->
      Alcotest.(check bool) "BOLT unsupported" true
        (List.assoc "BOLT" row.times = None))
    r.rows;
  (* headline geomeans in the paper's direction *)
  (match Mcf_experiments.Exp_fig8.geomean_speedup r ~over:"PyTorch" ~of_:"MCFuser" with
  | Some s -> Alcotest.(check bool) "well above 4x vs PyTorch" true (s > 4.0)
  | None -> Alcotest.fail "geomean missing");
  match
    Mcf_experiments.Exp_fig8.geomean_speedup r ~over:"FlashAttention"
      ~of_:"MCFuser"
  with
  | Some s -> Alcotest.(check bool) "beats FlashAttention" true (s > 1.0)
  | None -> Alcotest.fail "FA geomean missing"

let test_fig8_render () =
  let r = Mcf_experiments.Exp_fig8.compute a100 Mcf_experiments.Exp_fig8.Attention in
  let s = Mcf_experiments.Exp_fig8.render_result r in
  Alcotest.(check bool) "table rendered" true (contains s "S1");
  Alcotest.(check bool) "summary rendered" true (contains s "geomean")

(* --- fig10 --------------------------------------------------------------------- *)

let test_fig10_quadrants () =
  let stats, scatter = Mcf_experiments.Exp_fig10.compute ~per_workload:60 a100 in
  Alcotest.(check int) "partition is complete"
    stats.total
    (stats.q1 + stats.q2 + stats.q3 + stats.q4);
  Alcotest.(check int) "scatter matches" stats.total (List.length scatter);
  let correct = float_of_int (stats.q1 + stats.q3) /. float_of_int stats.total in
  Alcotest.(check bool)
    (Printf.sprintf "correct fraction %.2f > 0.8" correct)
    true (correct > 0.8);
  Alcotest.(check bool) "estimates positive" true
    (List.for_all (fun (x, y) -> x > 0.0 && y > 0.0) scatter)

(* --- fig11 --------------------------------------------------------------------- *)

let test_fig11_correlation () =
  let results = Mcf_experiments.Exp_fig11.compute ~samples:120 a100 in
  Alcotest.(check int) "G1-G4" 4 (List.length results);
  List.iter
    (fun (r : Mcf_experiments.Exp_fig11.workload_result) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s pearson %.2f strong" r.wname r.pearson)
        true (r.pearson > 0.5);
      Alcotest.(check bool)
        (Printf.sprintf "%s enough points" r.wname)
        true
        (r.n_points > 50))
    results

(* --- ablation ------------------------------------------------------------------ *)

let test_ablation_structure () =
  let names =
    List.map
      (fun (v : Mcf_experiments.Exp_ablation.variant) -> v.vname)
      Mcf_experiments.Exp_ablation.variants
  in
  Alcotest.(check bool) "has full" true (List.mem "full" names);
  Alcotest.(check bool) "has no-flat" true (List.mem "no-flat" names);
  Alcotest.(check int) "seven variants" 7 (List.length names)

(* --- tab4 / fig9 rendering smoke ------------------------------------------------- *)

let test_tab4_renders () =
  let s = Mcf_experiments.Exp_tab4.render a100 in
  Alcotest.(check bool) "sub-graph section" true (contains s "GEMM chains");
  Alcotest.(check bool) "end-to-end section" true (contains s "Bert-Base")

let test_fig9_renders () =
  let s = Mcf_experiments.Exp_fig9.render a100 in
  Alcotest.(check bool) "mentions engines" true (contains s "MCFuser+Relay");
  Alcotest.(check bool) "mentions models" true (contains s "Bert-Large");
  Alcotest.(check bool) "motivation line" true (contains s "of FLOPs but")

let () =
  Alcotest.run "mcf_experiments"
    [ ( "registry",
        [ Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "find" `Quick test_registry_find ] );
      ( "motivation",
        [ Alcotest.test_case "trend" `Quick test_motivation_trend ] );
      ( "sweep",
        [ Alcotest.test_case "fusion always wins" `Slow test_sweep_always_wins ] );
      ("fig2", [ Alcotest.test_case "MBCI transition" `Quick test_fig2_transition ]);
      ("fig7", [ Alcotest.test_case "pruning funnel" `Quick test_fig7_funnel ]);
      ( "fig8",
        [ Alcotest.test_case "attention panel" `Slow test_fig8_attention_panel;
          Alcotest.test_case "rendering" `Slow test_fig8_render ] );
      ("fig10", [ Alcotest.test_case "quadrants" `Quick test_fig10_quadrants ]);
      ("fig11", [ Alcotest.test_case "correlation" `Quick test_fig11_correlation ]);
      ("ablation", [ Alcotest.test_case "variants" `Quick test_ablation_structure ]);
      ( "rendering",
        [ Alcotest.test_case "tab4" `Slow test_tab4_renders;
          Alcotest.test_case "fig9" `Slow test_fig9_renders ] ) ]
