(* Tests for the comparison systems: vendor-op kernels, the GBDT cost
   model, and each baseline's documented capabilities and limitations
   (BOLT's pattern table and sm86 gap, FlashAttention's K=H constraint,
   Ansor's fallback, Chimera's restricted space). *)

module B = Mcf_baselines

let a100 = Mcf_gpu.Spec.a100
let rtx = Mcf_gpu.Spec.rtx3080
let gemm = Mcf_ir.Chain.gemm_chain ~m:512 ~n:256 ~k:64 ~h:64 ()
let attn = Mcf_ir.Chain.attention ~heads:8 ~m:512 ~n:512 ~k:64 ~h:64 ()

let () = B.Ansor.trials := 100 (* keep tests fast; accounting still exercised *)

(* --- Op_kernels --------------------------------------------------------------- *)

let test_gemm_kernel_valid () =
  let k = B.Op_kernels.gemm a100 ~batch:1 ~m:512 ~n:512 ~k:256 in
  match Mcf_gpu.Sim.run a100 k with
  | Ok v -> Alcotest.(check bool) "launches" true (v.time_s > 0.0)
  | Error e -> Alcotest.failf "vendor kernel failed: %s" (Mcf_gpu.Sim.string_of_error e)

let test_gemm_cublas_beats_fixed () =
  let t quality =
    Mcf_gpu.Sim.time_exn ~noise:false a100
      (B.Op_kernels.gemm ~quality a100 ~batch:1 ~m:1024 ~n:1024 ~k:512)
  in
  Alcotest.(check bool) "shape dispatch helps" true
    (t `Cublas <= t (`Fixed (32, 32, 32)))

let test_gemm_split_k () =
  (* a very skinny-M GEMM benefits from split-K parallelism *)
  let k = B.Op_kernels.gemm a100 ~batch:1 ~m:256 ~n:256 ~k:16384 in
  Alcotest.(check bool) "split-K grid is parallel enough" true
    (k.Mcf_gpu.Kernel.blocks > 16)

let test_memory_op_traffic () =
  let k =
    B.Op_kernels.memory_op a100 ~name:"x" ~read_elems:1e7 ~write_elems:1e7
      ~flops_per_elem:1.0
  in
  Alcotest.(check (float 1e4)) "total bytes = 2 x 20MB" 4e7
    (Mcf_gpu.Kernel.total_bytes k);
  match Mcf_gpu.Sim.run ~noise:false a100 k with
  | Ok v -> Alcotest.(check bool) "memory bound" true (v.bound = Mcf_gpu.Sim.Memory)
  | Error _ -> Alcotest.fail "memory op failed"

let test_softmax_kernels () =
  Alcotest.(check int) "fused = 1 kernel" 1
    (List.length (B.Op_kernels.softmax_kernels ~fused:true a100 ~rows:512.0 ~cols:512));
  Alcotest.(check int) "eager = 3 kernels" 3
    (List.length (B.Op_kernels.softmax_kernels ~fused:false a100 ~rows:512.0 ~cols:512))

(* --- Xgb ----------------------------------------------------------------------- *)

let test_xgb_learns () =
  let rng = Mcf_util.Rng.create 55 in
  let sample _ =
    let f = Array.init 6 (fun _ -> Mcf_util.Rng.float rng 5.0) in
    (f, (2.0 *. f.(0)) -. f.(3) +. 1.0)
  in
  let train = List.init 400 sample in
  let test = List.init 100 sample in
  let model = B.Xgb.train train in
  let mae =
    Mcf_util.Stats.mean
      (List.map (fun (f, y) -> Float.abs (B.Xgb.predict model f -. y)) test)
  in
  let baseline =
    let mean = Mcf_util.Stats.mean (List.map snd train) in
    Mcf_util.Stats.mean (List.map (fun (_, y) -> Float.abs (mean -. y)) test)
  in
  Alcotest.(check bool)
    (Printf.sprintf "mae %.3f < const baseline %.3f" mae baseline)
    true (mae < 0.5 *. baseline)

let test_xgb_deterministic () =
  let samples = List.init 50 (fun i -> ([| float_of_int i |], float_of_int (i * 2))) in
  let m1 = B.Xgb.train samples and m2 = B.Xgb.train samples in
  Alcotest.(check (float 1e-12)) "same prediction"
    (B.Xgb.predict m1 [| 25.0 |])
    (B.Xgb.predict m2 [| 25.0 |])

let test_xgb_errors () =
  Alcotest.(check bool) "empty raises" true
    (try
       ignore (B.Xgb.train []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "arity mismatch raises" true
    (try
       ignore (B.Xgb.train [ ([| 1.0 |], 1.0); ([| 1.0; 2.0 |], 2.0) ]);
       false
     with Invalid_argument _ -> true)

let test_xgb_features () =
  let l = Mcf_ir.Lower.lower ~elem_bytes:2 gemm
      (Mcf_ir.Candidate.make
         (Mcf_ir.Tiling.Deep
            (List.map (Mcf_ir.Chain.axis gemm) [ "m"; "h"; "n"; "k" ]))
         [ ("m", 64); ("n", 64); ("k", 32); ("h", 32) ])
  in
  let f = B.Xgb.feature_vector l in
  Alcotest.(check int) "11 features" 11 (Array.length f);
  Array.iter (fun v -> Alcotest.(check bool) "finite" true (Float.is_finite v)) f

(* --- derate helper --------------------------------------------------------------- *)

let test_derate_math () =
  let k = B.Op_kernels.gemm a100 ~batch:1 ~m:256 ~n:256 ~k:256 in
  let d = B.Backend.derate_math 3.0 k in
  Alcotest.(check (float 1.0)) "flops tripled"
    (3.0 *. Mcf_gpu.Kernel.total_flops k)
    (Mcf_gpu.Kernel.total_flops d);
  (* epilogue entries are untouched *)
  let withepi =
    { k with
      Mcf_gpu.Kernel.computes =
        { Mcf_gpu.Kernel.clabel = "S!epi";
          flops_per_block = 100.0;
          tile_m = 16;
          tile_n = 16;
          tile_k = 16 }
        :: k.computes }
  in
  let d2 = B.Backend.derate_math 3.0 withepi in
  let epi =
    List.find
      (fun (c : Mcf_gpu.Kernel.compute) -> c.clabel = "S!epi")
      d2.Mcf_gpu.Kernel.computes
  in
  Alcotest.(check (float 1e-9)) "epilogue untouched" 100.0 epi.flops_per_block

(* --- PyTorch / Relay --------------------------------------------------------------- *)

let test_pytorch_gemm_chain () =
  match B.Pytorch.backend.tune a100 gemm with
  | Ok o ->
    Alcotest.(check int) "two kernels" 2 (List.length o.kernels);
    Alcotest.(check bool) "unfused" false o.fused;
    Alcotest.(check (float 1e-12)) "no tuning" 0.0 o.tuning_virtual_s
  | Error _ -> Alcotest.fail "pytorch failed"

let test_pytorch_attention_kernels () =
  match B.Pytorch.backend.tune a100 attn with
  | Ok o ->
    (* bmm1 + 3 eager softmax passes + bmm2 *)
    Alcotest.(check int) "five kernels" 5 (List.length o.kernels)
  | Error _ -> Alcotest.fail "pytorch attention failed"

let test_relay_fewer_kernels () =
  match (B.Relay.backend.tune a100 attn, B.Pytorch.backend.tune a100 attn) with
  | Ok r, Ok p ->
    Alcotest.(check bool) "relay fuses softmax" true
      (List.length r.kernels < List.length p.kernels)
  | _ -> Alcotest.fail "backends failed"

(* --- BOLT ----------------------------------------------------------------------- *)

let test_bolt_sm86_unsupported () =
  match B.Bolt.backend.tune rtx gemm with
  | Error (B.Backend.Unsupported msg) ->
    Alcotest.(check bool) "mentions sm86" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "BOLT must refuse sm86"

let test_bolt_no_attention () =
  match B.Bolt.backend.tune a100 attn with
  | Error (B.Backend.Unsupported _) -> ()
  | Ok _ -> Alcotest.fail "BOLT cannot fuse softmax chains"

let test_bolt_fuses_small_chain () =
  match B.Bolt.backend.tune a100 gemm with
  | Ok o ->
    Alcotest.(check bool) "fused template" true o.fused;
    Alcotest.(check bool) "template instantiation charged" true
      (o.tuning_virtual_s > 40.0)
  | Error _ -> Alcotest.fail "BOLT failed on a dual-GEMM"

let test_bolt_fallback_on_large_n () =
  (* full-N residency cannot fit for N = 1024 at batch 8 *)
  let big = Mcf_ir.Chain.gemm_chain ~batch:8 ~m:1024 ~n:1024 ~k:128 ~h:128 () in
  match B.Bolt.backend.tune a100 big with
  | Ok o ->
    Alcotest.(check bool) "falls back unfused" false o.fused;
    Alcotest.(check bool) "notes the fallback" true (o.note <> None)
  | Error _ -> Alcotest.fail "BOLT fallback failed"

(* --- FlashAttention ---------------------------------------------------------------- *)

let test_flash_requires_attention () =
  match B.Flash_attention.backend.tune a100 gemm with
  | Error (B.Backend.Unsupported _) -> ()
  | Ok _ -> Alcotest.fail "FA must reject plain GEMM chains"

let test_flash_requires_k_eq_h () =
  let kh = Mcf_ir.Chain.attention ~heads:8 ~m:512 ~n:512 ~k:64 ~h:128 () in
  match B.Flash_attention.backend.tune a100 kh with
  | Error (B.Backend.Unsupported msg) ->
    Alcotest.(check bool) "K=H constraint" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "FA must reject K <> H"

let test_flash_head_dim_limit () =
  let big = Mcf_ir.Chain.attention ~heads:2 ~m:256 ~n:256 ~k:256 ~h:256 () in
  match B.Flash_attention.backend.tune a100 big with
  | Error (B.Backend.Unsupported _) -> ()
  | Ok _ -> Alcotest.fail "FA must reject head dim > 128"

let test_flash_runs_attention () =
  match B.Flash_attention.backend.tune a100 attn with
  | Ok o ->
    Alcotest.(check bool) "fused" true o.fused;
    Alcotest.(check (float 1e-12)) "no tuning" 0.0 o.tuning_virtual_s
  | Error _ -> Alcotest.fail "FA failed on S1-like shape"

(* --- Ansor ------------------------------------------------------------------------ *)

let test_ansor_fuses_small_batch () =
  match B.Ansor.backend.tune a100 gemm with
  | Ok o ->
    Alcotest.(check bool) "fused" true o.fused;
    Alcotest.(check bool) "trial budget charged" true
      (o.tuning_virtual_s > float_of_int !B.Ansor.trials *. 4.0)
  | Error _ -> Alcotest.fail "Ansor failed"

let test_ansor_fallback_large_batch () =
  let big = Mcf_ir.Chain.gemm_chain ~batch:8 ~m:256 ~n:256 ~k:64 ~h:64 () in
  match B.Ansor.backend.tune a100 big with
  | Ok o ->
    Alcotest.(check bool) "unfused fallback" false o.fused;
    Alcotest.(check bool) "notes it" true (o.note <> None)
  | Error _ -> Alcotest.fail "Ansor fallback failed"

(* --- Chimera / MCFuser ------------------------------------------------------------- *)

let test_chimera_runs () =
  match B.Chimera.backend.tune a100 gemm with
  | Ok o ->
    Alcotest.(check bool) "fused" true o.fused;
    Alcotest.(check string) "named for reports" "MCFuser-Chimera" o.backend
  | Error _ -> Alcotest.fail "Chimera failed"

let test_mcfuser_backend_wraps_tuner () =
  match B.Mcfuser_backend.backend.tune a100 gemm with
  | Ok o ->
    Alcotest.(check bool) "fused single kernel" true
      (o.fused && List.length o.kernels = 1)
  | Error _ -> Alcotest.fail "MCFuser backend failed"

let test_mcfuser_beats_pytorch () =
  match (B.Mcfuser_backend.backend.tune a100 gemm, B.Pytorch.backend.tune a100 gemm)
  with
  | Ok f, Ok p ->
    Alcotest.(check bool) "MBCI fusion wins" true (f.time_s < p.time_s)
  | _ -> Alcotest.fail "backends failed"

let test_mcfuser_beats_flash_on_s1 () =
  match
    ( B.Mcfuser_backend.backend.tune a100 attn,
      B.Flash_attention.backend.tune a100 attn )
  with
  | Ok f, Ok fa ->
    Alcotest.(check bool) "searched schedule beats handcrafted" true
      (f.time_s < fa.time_s)
  | _ -> Alcotest.fail "backends failed"

let () =
  Alcotest.run "mcf_baselines"
    [ ( "op-kernels",
        [ Alcotest.test_case "gemm valid" `Quick test_gemm_kernel_valid;
          Alcotest.test_case "cublas beats fixed" `Quick
            test_gemm_cublas_beats_fixed;
          Alcotest.test_case "split-K" `Quick test_gemm_split_k;
          Alcotest.test_case "memory op" `Quick test_memory_op_traffic;
          Alcotest.test_case "softmax kernels" `Quick test_softmax_kernels ] );
      ( "xgb",
        [ Alcotest.test_case "learns" `Quick test_xgb_learns;
          Alcotest.test_case "deterministic" `Quick test_xgb_deterministic;
          Alcotest.test_case "errors" `Quick test_xgb_errors;
          Alcotest.test_case "features" `Quick test_xgb_features ] );
      ("derate", [ Alcotest.test_case "math only" `Quick test_derate_math ]);
      ( "pytorch/relay",
        [ Alcotest.test_case "gemm chain" `Quick test_pytorch_gemm_chain;
          Alcotest.test_case "attention kernels" `Quick
            test_pytorch_attention_kernels;
          Alcotest.test_case "relay fuses softmax" `Quick
            test_relay_fewer_kernels ] );
      ( "bolt",
        [ Alcotest.test_case "sm86" `Quick test_bolt_sm86_unsupported;
          Alcotest.test_case "no attention pattern" `Quick
            test_bolt_no_attention;
          Alcotest.test_case "fuses dual gemm" `Quick
            test_bolt_fuses_small_chain;
          Alcotest.test_case "fallback big N" `Quick
            test_bolt_fallback_on_large_n ] );
      ( "flash-attention",
        [ Alcotest.test_case "attention only" `Quick
            test_flash_requires_attention;
          Alcotest.test_case "K = H" `Quick test_flash_requires_k_eq_h;
          Alcotest.test_case "head dim" `Quick test_flash_head_dim_limit;
          Alcotest.test_case "runs" `Quick test_flash_runs_attention ] );
      ( "ansor",
        [ Alcotest.test_case "fuses small batch" `Quick
            test_ansor_fuses_small_batch;
          Alcotest.test_case "fallback big batch" `Quick
            test_ansor_fallback_large_batch ] );
      ( "mcfuser-vs",
        [ Alcotest.test_case "chimera runs" `Quick test_chimera_runs;
          Alcotest.test_case "backend wrapper" `Quick
            test_mcfuser_backend_wraps_tuner;
          Alcotest.test_case "beats pytorch" `Quick test_mcfuser_beats_pytorch;
          Alcotest.test_case "beats flash-attention" `Quick
            test_mcfuser_beats_flash_on_s1 ] ) ]
