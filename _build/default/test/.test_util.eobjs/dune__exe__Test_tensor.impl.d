test/test_tensor.ml: Alcotest Array Float List Mcf_tensor Mcf_util QCheck QCheck_alcotest
