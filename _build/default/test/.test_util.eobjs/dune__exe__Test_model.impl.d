test/test_model.ml: Alcotest Array Axis Candidate Chain Float List Lower Mcf_gpu Mcf_ir Mcf_model Mcf_util QCheck QCheck_alcotest Tiling
