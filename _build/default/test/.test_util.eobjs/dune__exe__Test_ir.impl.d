test/test_ir.ml: Alcotest Array Axis Candidate Chain List Lower Mcf_gpu Mcf_ir Mcf_util Program QCheck QCheck_alcotest Result String Tiling Tir
