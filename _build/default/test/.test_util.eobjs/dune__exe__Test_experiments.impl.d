test/test_experiments.ml: Alcotest Float List Mcf_baselines Mcf_experiments Mcf_gpu Mcf_util Mcf_workloads Printf String
