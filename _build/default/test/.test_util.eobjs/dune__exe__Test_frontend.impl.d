test/test_frontend.ml: Alcotest Engine Float Graph List Mcf_frontend Mcf_gpu Mcf_ir Mcf_util Mcf_workloads Opgraph Result
