test/test_gpu.ml: Alcotest Float List Mcf_gpu QCheck QCheck_alcotest String
