test/test_codegen.ml: Alcotest Candidate Chain Lower Mcf_codegen Mcf_gpu Mcf_ir Mcf_model Program String Tiling
