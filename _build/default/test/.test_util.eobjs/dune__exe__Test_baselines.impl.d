test/test_baselines.ml: Alcotest Array Float List Mcf_baselines Mcf_gpu Mcf_ir Mcf_util Printf String
