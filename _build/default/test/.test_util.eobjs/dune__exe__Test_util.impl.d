test/test_util.ml: Alcotest Array Chart Fun Gen Hashing List Listx Mcf_util Parallel QCheck QCheck_alcotest Rng Stats String Table
