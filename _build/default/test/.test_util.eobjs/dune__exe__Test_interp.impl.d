test/test_interp.ml: Alcotest Array Axis Candidate Chain List Mcf_interp Mcf_ir Mcf_tensor Mcf_util Program QCheck QCheck_alcotest Result Tiling
