type breakdown = {
  t_mem : float;
  t_comp : float;
  alpha : float;
  t_total : float;
}

let breakdown (spec : Mcf_gpu.Spec.t) (l : Mcf_ir.Lower.t) =
  let blocks = float_of_int l.blocks in
  let t_mem = Mcf_ir.Lower.total_traffic_bytes l /. spec.mem_bw in
  let t_comp =
    Mcf_ir.Lower.flops_per_block l *. blocks /. spec.peak_flops
  in
  let alpha = (blocks +. float_of_int spec.sm_count) /. blocks in
  { t_mem; t_comp; alpha; t_total = (t_mem +. t_comp) *. alpha }

let estimate spec l = (breakdown spec l).t_total
