(** The analytical performance model, eqs. (2)-(5) of §IV-A.

    [t_estm = (t_mem + t_comp) x alpha] where

    - [t_mem] (eq. 3) sums, over every Load/Store statement, tile bytes x
      trip count of all surrounding loops (grid included), divided by the
      memory bandwidth 𝒲;
    - [t_comp] (eq. 4) sums, over every compute statement, tile FLOPs x
      trip count divided by the peak throughput 𝒫;
    - [alpha = (N_block + N_SM) / N_block] (eq. 5) penalizes kernels that
      launch too few thread blocks to fill the GPU.

    The model needs no training and no measurement — replacing Ansor's
    learned cost model with it is what removes the tuning-time bottleneck
    (Table IV).  It knowingly ignores occupancy, L2, coalescing and
    tensor-core efficiency; Fig. 11 quantifies the resulting gap against
    the simulator's "measured" times. *)

type breakdown = {
  t_mem : float;
  t_comp : float;
  alpha : float;
  t_total : float;
}

val breakdown : Mcf_gpu.Spec.t -> Mcf_ir.Lower.t -> breakdown

val estimate : Mcf_gpu.Spec.t -> Mcf_ir.Lower.t -> float
(** [t_total] only. *)
