(** Shared-memory estimation, eq. (1) of §III-C.

    [Shm_estm = sum over resident tensors of (T_Li x T_Lj)] — the per-block
    working set implied by the tiling expression: one tile per loaded input,
    the resident tiles of intermediates and of the output accumulator
    (including the Rule-2 multiplicity for schedules that must keep several
    partial tiles alive).

    The estimate deliberately ignores what real code generation adds on
    top — pipelined double buffers, bank-conflict padding, softmax
    statistics — which is exactly the estimate-vs-actual gap that Fig. 10
    measures (see [Mcf_codegen.Alloc] for the "actual" side). *)

val estimate_bytes : Mcf_ir.Lower.t -> int
(** Eq. (1) in bytes. *)

val within_budget : Mcf_gpu.Spec.t -> slack:float -> Mcf_ir.Lower.t -> bool
(** Rule 4: [estimate <= slack x Shm_max] with the paper's slack of 1.2
    absorbing estimation error. *)
