lib/model/perf.mli: Mcf_gpu Mcf_ir
