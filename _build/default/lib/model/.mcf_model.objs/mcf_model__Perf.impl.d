lib/model/perf.ml: Mcf_gpu Mcf_ir
