lib/model/shmem.mli: Mcf_gpu Mcf_ir
