lib/model/shmem.ml: List Mcf_gpu Mcf_ir
