let estimate_bytes (l : Mcf_ir.Lower.t) =
  List.fold_left
    (fun acc (r : Mcf_ir.Lower.residency_item) -> acc + (r.tile_bytes * r.mult))
    0 l.residency

let within_budget (spec : Mcf_gpu.Spec.t) ~slack l =
  float_of_int (estimate_bytes l)
  <= slack *. float_of_int spec.smem_per_block
