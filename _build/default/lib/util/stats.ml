let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let logs = List.map (fun x -> log x) xs in
    exp (mean logs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
    sqrt var

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: xs -> List.fold_left Float.min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: xs -> List.fold_left Float.max x xs

let sorted xs = List.sort Float.compare xs

let median xs =
  match sorted xs with
  | [] -> 0.0
  | s ->
    let a = Array.of_list s in
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let percentile p xs =
  match sorted xs with
  | [] -> 0.0
  | s ->
    let a = Array.of_list s in
    let n = Array.length a in
    if n = 1 then a.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
    end

let pearson xs ys =
  if List.length xs <> List.length ys then
    invalid_arg "Stats.pearson: length mismatch";
  let mx = mean xs and my = mean ys in
  let dx = List.map (fun x -> x -. mx) xs in
  let dy = List.map (fun y -> y -. my) ys in
  let dot = List.fold_left2 (fun acc a b -> acc +. (a *. b)) 0.0 dx dy in
  let nx = sqrt (List.fold_left (fun acc a -> acc +. (a *. a)) 0.0 dx) in
  let ny = sqrt (List.fold_left (fun acc a -> acc +. (a *. a)) 0.0 dy) in
  if nx = 0.0 || ny = 0.0 then 0.0 else dot /. (nx *. ny)

(* Average ranks so that ties do not bias the rank correlation. *)
let ranks xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare arr.(i) arr.(j)) idx;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && arr.(idx.(!j + 1)) = arr.(idx.(!i)) do incr j done;
    let avg = float_of_int (!i + !j) /. 2.0 in
    for k = !i to !j do
      r.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  Array.to_list r

let spearman xs ys = pearson (ranks xs) (ranks ys)

let histogram ~bins xs =
  match xs with
  | [] -> [||]
  | _ ->
    let lo = minimum xs and hi = maximum xs in
    let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
    let counts = Array.make bins 0 in
    let place x =
      let b = int_of_float ((x -. lo) /. width) in
      let b = max 0 (min (bins - 1) b) in
      counts.(b) <- counts.(b) + 1
    in
    List.iter place xs;
    Array.init bins (fun b ->
        let blo = lo +. (float_of_int b *. width) in
        (blo, blo +. width, counts.(b)))
