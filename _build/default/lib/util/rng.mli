(** Deterministic pseudo-random number generation.

    All stochastic components of the reproduction (search initialization,
    mutation, simulator noise, synthetic tensor data) draw from this module so
    that every experiment is reproducible bit-for-bit from its seed.  The
    generator is xoshiro256** seeded through splitmix64, following the
    reference implementations by Blackman and Vigna. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing it. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound).  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool
(** Uniform coin flip. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller normal deviate. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array.  @raise Invalid_argument on [||]. *)

val pick_list : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val weighted_index : t -> float array -> int
(** [weighted_index t weights] samples an index proportionally to
    non-negative [weights].  Falls back to uniform when the total mass is
    not positive.  @raise Invalid_argument on [||]. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [min k n] distinct indices
    from \[0, n), in random order. *)
