(** Deterministic data parallelism on OCaml 5 domains.

    The compiler's hot loops — lowering thousands of candidates during
    space enumeration, sampling candidates for the accuracy experiments —
    are pure per-element maps, so they parallelize trivially: the input is
    split into contiguous chunks, one domain maps each chunk, and results
    are concatenated in order.  Output is bit-identical to the sequential
    map regardless of the domain count. *)

val default_domains : unit -> int
(** [min 8 (Domain.recommended_domain_count ())], at least 1. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map.  [domains <= 1] (or a short list) runs
    sequentially.  The function must not rely on shared mutable state.
    If [f] raises in any domain, the exception is re-raised after all
    domains are joined. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array counterpart of {!map}. *)
