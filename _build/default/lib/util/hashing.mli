(** FNV-1a hashing, used to derive deterministic per-candidate simulator
    noise and stable identifiers for schedule candidates. *)

val fnv1a64 : string -> int64
(** 64-bit FNV-1a of a string. *)

val combine : int64 -> string -> int64
(** Continue an FNV-1a stream with more bytes. *)

val to_unit_float : int64 -> float
(** Map a hash to a float in \[0, 1), uniformly over 53 bits. *)
