let default_domains () =
  max 1 (min 8 (Domain.recommended_domain_count ()))

let map_array ?domains f arr =
  let n = Array.length arr in
  let d = match domains with Some d -> d | None -> default_domains () in
  let d = max 1 (min d n) in
  if d = 1 || n < 32 then Array.map f arr
  else begin
    (* chunk bounds: contiguous, covering, order-preserving *)
    let chunk = (n + d - 1) / d in
    let results = Array.make d (Ok [||]) in
    let worker i () =
      let lo = i * chunk in
      let hi = min n (lo + chunk) in
      results.(i) <-
        (try Ok (Array.init (hi - lo) (fun j -> f arr.(lo + j)))
         with e -> Error e)
    in
    let handles =
      List.init (d - 1) (fun i -> Domain.spawn (worker (i + 1)))
    in
    worker 0 ();
    List.iter Domain.join handles;
    Array.iter (function Error e -> raise e | Ok _ -> ()) results;
    Array.concat
      (Array.to_list
         (Array.map (function Ok a -> a | Error _ -> assert false) results))
  end

let map ?domains f l =
  Array.to_list (map_array ?domains f (Array.of_list l))
