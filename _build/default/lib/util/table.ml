type align = Left | Right

type line = Row of string list | Rule

type t = {
  headers : string list;
  arity : int;
  mutable aligns : align list;
  mutable lines : line list; (* reversed *)
}

let default_aligns n = List.init n (fun i -> if i = 0 then Left else Right)

let create ~headers =
  let arity = List.length headers in
  { headers; arity; aligns = default_aligns arity; lines = [] }

let set_align t aligns =
  if List.length aligns <> t.arity then
    invalid_arg "Table.set_align: arity mismatch";
  t.aligns <- aligns

let add_row t cells =
  if List.length cells <> t.arity then
    invalid_arg "Table.add_row: arity mismatch";
  t.lines <- Row cells :: t.lines

let add_rule t = t.lines <- Rule :: t.lines

let rows t = List.rev t.lines

let widths t =
  let w = Array.of_list (List.map String.length t.headers) in
  let update = function
    | Rule -> ()
    | Row cells ->
      List.iteri (fun i c -> w.(i) <- max w.(i) (String.length c)) cells
  in
  List.iter update (rows t);
  w

let pad align width s =
  let fill = width - String.length s in
  if fill <= 0 then s
  else
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s

let render t =
  let w = widths t in
  let aligns = Array.of_list t.aligns in
  let buf = Buffer.create 256 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun width ->
        Buffer.add_string buf (String.make (width + 2) '-');
        Buffer.add_char buf '+')
      w;
    Buffer.add_char buf '\n'
  in
  let row cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad aligns.(i) w.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  rule ();
  row t.headers;
  rule ();
  List.iter (function Row cells -> row cells | Rule -> rule ()) (rows t);
  rule ();
  Buffer.contents buf

let render_markdown t =
  let w = widths t in
  let aligns = Array.of_list t.aligns in
  let buf = Buffer.create 256 in
  let row cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad aligns.(i) w.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  row t.headers;
  Buffer.add_char buf '|';
  Array.iteri
    (fun i width ->
      let dashes = String.make (max 3 width) '-' in
      let cell =
        match aligns.(i) with Left -> dashes ^ " " | Right -> dashes ^ ":"
      in
      Buffer.add_char buf ' ';
      Buffer.add_string buf cell;
      Buffer.add_char buf '|')
    w;
  Buffer.add_char buf '\n';
  List.iter (function Row cells -> row cells | Rule -> ()) (rows t);
  Buffer.contents buf

let fmt_float ?(digits = 2) v = Printf.sprintf "%.*f" digits v

let fmt_time_s v =
  let abs = Float.abs v in
  if abs < 1e-3 then Printf.sprintf "%.1fus" (v *. 1e6)
  else if abs < 1.0 then Printf.sprintf "%.2fms" (v *. 1e3)
  else if abs < 120.0 then Printf.sprintf "%.2fs" v
  else if abs < 7200.0 then Printf.sprintf "%.1fmin" (v /. 60.0)
  else Printf.sprintf "%.2fh" (v /. 3600.0)

let fmt_sci v =
  if v = 0.0 then "0"
  else begin
    let e = int_of_float (Float.floor (Float.log10 (Float.abs v))) in
    let m = v /. (10.0 ** float_of_int e) in
    Printf.sprintf "%.2fe%d" m e
  end
