lib/util/table.mli:
