lib/util/parallel.mli:
