lib/util/rng.mli:
