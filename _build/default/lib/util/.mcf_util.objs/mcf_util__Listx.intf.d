lib/util/listx.mli:
