lib/util/stats.mli:
