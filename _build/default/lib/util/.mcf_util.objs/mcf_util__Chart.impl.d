lib/util/chart.ml: Array Buffer Float List Printf String
