lib/util/chart.mli:
