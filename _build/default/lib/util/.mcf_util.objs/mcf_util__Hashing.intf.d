lib/util/hashing.mli:
