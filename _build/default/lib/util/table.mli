(** ASCII table rendering for experiment output.

    The benchmark harness prints one table per paper table/figure; this
    module keeps the formatting consistent (column alignment, separators,
    optional markdown output for EXPERIMENTS.md). *)

type align = Left | Right

type t
(** A table under construction. *)

val create : headers:string list -> t
(** Column count is fixed by [headers]. *)

val set_align : t -> align list -> unit
(** Per-column alignment; default is [Left] for the first column and
    [Right] for the rest. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the arity differs from the headers. *)

val add_rule : t -> unit
(** Insert a horizontal separator at the current position. *)

val render : t -> string
(** Boxed ASCII rendering, trailing newline included. *)

val render_markdown : t -> string
(** GitHub-flavoured markdown rendering, trailing newline included. *)

val fmt_float : ?digits:int -> float -> string
(** Fixed-point float with [digits] decimals (default 2). *)

val fmt_time_s : float -> string
(** Human scale for seconds: "12.3us", "4.56ms", "7.89s", "1.2h". *)

val fmt_sci : float -> string
(** Scientific notation with two significant decimals, e.g. "1.09e8". *)
