let offset_basis = 0xCBF29CE484222325L
let prime = 0x100000001B3L

let combine h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let fnv1a64 s = combine offset_basis s

let to_unit_float h =
  let v = Int64.to_int (Int64.shift_right_logical h 11) in
  float_of_int v /. 9007199254740992.0
