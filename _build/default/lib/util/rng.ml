(* xoshiro256** with splitmix64 seeding.  Pure Int64 arithmetic so results
   are identical on every platform. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (int64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine for our bounds (all far below 2^62). *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t bound =
  (* 53 uniform mantissa bits. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  bound *. (float_of_int v /. 9007199254740992.0)

let bool t = Int64.compare (Int64.logand (int64 t) 1L) 0L <> 0

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () in
  let u2 = float t 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let weighted_index t weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Rng.weighted_index: empty array";
  let total = Array.fold_left (fun acc w -> acc +. Float.max w 0.0) 0.0 weights in
  if total <= 0.0 then int t n
  else begin
    let target = float t total in
    let rec scan i acc =
      if i >= n - 1 then n - 1
      else
        let acc = acc +. Float.max weights.(i) 0.0 in
        if target < acc then i else scan (i + 1) acc
    in
    scan 0 0.0
  end

let sample_without_replacement t k n =
  let k = min k n in
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  Array.to_list (Array.sub arr 0 k)
