(** Descriptive statistics used by the evaluation harness: speedup
    aggregation, model-vs-measurement correlation (Fig. 11), quadrant
    accuracy (Fig. 10). *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on fewer than two samples. *)

val minimum : float list -> float
(** Smallest element.  @raise Invalid_argument on the empty list. *)

val maximum : float list -> float
(** Largest element.  @raise Invalid_argument on the empty list. *)

val median : float list -> float
(** Median (average of middle pair for even lengths); 0 on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in \[0,100\], linear interpolation; 0 on []. *)

val pearson : float list -> float list -> float
(** Pearson correlation coefficient of two equal-length series; 0 when a
    series is constant.  @raise Invalid_argument on length mismatch. *)

val spearman : float list -> float list -> float
(** Spearman rank correlation (Pearson on average ranks). *)

val histogram : bins:int -> float list -> (float * float * int) array
(** [histogram ~bins xs] returns [(lo, hi, count)] per bin spanning
    \[min xs, max xs\]. *)
