(** Network graphs for end-to-end evaluation (§VI-C).

    A model is a linear sequence of coarse operators — exactly the level a
    graph compiler's partitioner works at.  Self-attention appears as one
    [Mbci_attention] node: the partitioner routes it to MCFuser while the
    remaining operators go to the fallback compiler (Relay/Ansor/BOLT). *)

type op =
  | Dense of { dname : string; m : int; n : int; k : int }
      (** Dense projection \[m,k\] x \[k,n\]; bias handled separately. *)
  | Mbci_attention of { aname : string; cfg : Mcf_workloads.Configs.attention_config }
      (** A fusable self-attention sub-graph (an MBCI chain). *)
  | Bias_gelu of { ename : string; elems : float }
      (** Bias add + GELU over [elems] activations. *)
  | Bias_add of { ename : string; elems : float }
  | Residual_layernorm of { lname : string; rows : float; cols : int }

type t = {
  gname : string;
  ops : op list;
  flops : float;  (** Dense + attention contraction FLOPs, for reporting. *)
}

val bert : Mcf_workloads.Configs.bert_config -> t
(** The encoder stack: per layer QKV projections, self-attention, output
    projection, residual+LN, FFN up (GELU), FFN down, residual+LN. *)

val unique_dense_shapes : t -> (int * int * int) list
(** Distinct (m, n, k) projection shapes — the per-task unit of Ansor's
    and BOLT's end-to-end tuning cost. *)

val attention_configs : t -> Mcf_workloads.Configs.attention_config list
(** Distinct MBCI sub-graphs found by the partitioner. *)

val attention_time_fraction :
  t -> dense_time:(int * int * int -> float) -> attn_time:(Mcf_workloads.Configs.attention_config -> float) -> float
(** Fraction of model time spent in self-attention given per-op costs —
    the §II-A motivation numbers (e.g. 14 % of FLOPs but 51 % of time). *)

val op_name : op -> string
