(** Fine-grained operator graphs and the MBCI partitioner (§V-B).

    "When presented with a deep learning model ... we employ a partitioner
    to segment the model into MBCI sub-graphs and other components."  This
    module is that partitioner: models arrive as plain operator DAGs
    (matmuls, transposes, scaling, softmax, activations — what an ONNX or
    Relay import produces), and {!partition} pattern-matches fusable MBCI
    chains:

    - {b self-attention}: [Matmul -> (Scale) -> Softmax -> Matmul] where the
      intermediate feeds only the chain;
    - {b contraction chains}: [Matmul -> (unary) -> Matmul] whose unfused
      arithmetic intensity sits below the device roofline (the MBCI test of
      §II-A) — compute-bound chains are deliberately left unfused, since
      fusion cannot help them.

    Matched sub-graphs are rewritten to single [Fused] nodes carrying the
    equivalent {!Mcf_ir.Chain.t}, ready for the MCFuser tuner; everything
    else stays for the host compiler. *)

type op_kind =
  | Input of { shape : int list }
  | Matmul of { batch : int; m : int; n : int; k : int; transpose_b : bool }
  | Scale of float
  | Softmax  (** Over the last axis. *)
  | Gelu
  | Bias_add
  | Layernorm
  | Residual_add
  | Transpose_heads  (** Layout shuffling around attention. *)
  | Fused of Mcf_ir.Chain.t  (** Result of partitioning. *)

type node = {
  id : int;
  name : string;
  kind : op_kind;
  inputs : int list;  (** ids of producing nodes, in operand order. *)
}

type t = {
  nodes : node list;  (** Topologically ordered (producers first). *)
}

val validate : t -> (unit, string) result
(** Ids unique, inputs reference earlier nodes only. *)

val consumers : t -> int -> node list

val node : t -> int -> node
(** @raise Not_found for unknown ids. *)

val bert_layer : Mcf_workloads.Configs.bert_config -> t
(** One encoder layer as an import would produce it: packed QKV projection,
    head split transposes, Q.K^T, scale, softmax, probs.V, head merge,
    output projection, residual/LN, FFN with GELU. *)

type match_report = {
  fused_attention : int;  (** Attention patterns rewritten. *)
  fused_chains : int;  (** Plain MBCI contraction chains rewritten. *)
  rejected_compute_bound : int;
      (** Matmul pairs that matched structurally but failed the MBCI
          intensity test and were left unfused. *)
}

val partition : Mcf_gpu.Spec.t -> t -> t * match_report
(** Rewrite every matched MBCI sub-graph into a [Fused] node. *)

val fused_chains : t -> Mcf_ir.Chain.t list
(** The chains carried by [Fused] nodes, in graph order. *)

val to_string : t -> string
(** One line per node, for inspection and tests. *)
