type op =
  | Dense of { dname : string; m : int; n : int; k : int }
  | Mbci_attention of {
      aname : string;
      cfg : Mcf_workloads.Configs.attention_config;
    }
  | Bias_gelu of { ename : string; elems : float }
  | Bias_add of { ename : string; elems : float }
  | Residual_layernorm of { lname : string; rows : float; cols : int }

type t = {
  gname : string;
  ops : op list;
  flops : float;
}

let op_name = function
  | Dense { dname; _ } -> dname
  | Mbci_attention { aname; _ } -> aname
  | Bias_gelu { ename; _ } -> ename
  | Bias_add { ename; _ } -> ename
  | Residual_layernorm { lname; _ } -> lname

let bert (cfg : Mcf_workloads.Configs.bert_config) =
  let s = cfg.seq in
  let hd = cfg.hidden in
  let inter = cfg.intermediate in
  let head_dim = hd / cfg.bheads in
  let attn_cfg =
    { Mcf_workloads.Configs.sname = cfg.bname ^ "-attn";
      heads = cfg.bheads;
      sm = s;
      sn = s;
      sk = head_dim;
      sh = head_dim;
      network = cfg.bname }
  in
  let fs = float_of_int s in
  let layer i =
    let n p = Printf.sprintf "l%d.%s" i p in
    [ Dense { dname = n "qkv"; m = s; n = 3 * hd; k = hd };
      Bias_add { ename = n "qkv.bias"; elems = fs *. float_of_int (3 * hd) };
      Mbci_attention { aname = n "self_attention"; cfg = attn_cfg };
      Dense { dname = n "out_proj"; m = s; n = hd; k = hd };
      Bias_add { ename = n "out.bias"; elems = fs *. float_of_int hd };
      Residual_layernorm { lname = n "ln1"; rows = fs; cols = hd };
      Dense { dname = n "ffn_up"; m = s; n = inter; k = hd };
      Bias_gelu { ename = n "ffn.gelu"; elems = fs *. float_of_int inter };
      Dense { dname = n "ffn_down"; m = s; n = hd; k = inter };
      Bias_add { ename = n "ffn.bias"; elems = fs *. float_of_int hd };
      Residual_layernorm { lname = n "ln2"; rows = fs; cols = hd } ]
  in
  let ops = List.concat_map layer (Mcf_util.Listx.range cfg.layers) in
  let flops =
    Mcf_util.Listx.sum_by
      (function
        | Dense { m; n; k; _ } ->
          2.0 *. float_of_int m *. float_of_int n *. float_of_int k
        | Mbci_attention { cfg = a; _ } ->
          let f = float_of_int in
          2.0 *. f a.heads *. f a.sm *. f a.sn *. (f a.sk +. f a.sh)
        | Bias_gelu _ | Bias_add _ | Residual_layernorm _ -> 0.0)
      ops
  in
  { gname = cfg.bname; ops; flops }

let unique_dense_shapes t =
  t.ops
  |> List.filter_map (function
       | Dense { m; n; k; _ } -> Some (m, n, k)
       | Mbci_attention _ | Bias_gelu _ | Bias_add _ | Residual_layernorm _ ->
         None)
  |> Mcf_util.Listx.dedup ~compare:Stdlib.compare

let attention_configs t =
  t.ops
  |> List.filter_map (function
       | Mbci_attention { cfg; _ } -> Some cfg
       | Dense _ | Bias_gelu _ | Bias_add _ | Residual_layernorm _ -> None)
  |> Mcf_util.Listx.dedup_keep_order
       ~key:(fun (c : Mcf_workloads.Configs.attention_config) -> c.sname)

let attention_time_fraction t ~dense_time ~attn_time =
  let total, attn =
    List.fold_left
      (fun (total, attn) op ->
        match op with
        | Dense { m; n; k; _ } -> (total +. dense_time (m, n, k), attn)
        | Mbci_attention { cfg; _ } ->
          let ta = attn_time cfg in
          (total +. ta, attn +. ta)
        | Bias_gelu _ | Bias_add _ | Residual_layernorm _ -> (total, attn))
      (0.0, 0.0) t.ops
  in
  if total > 0.0 then attn /. total else 0.0
