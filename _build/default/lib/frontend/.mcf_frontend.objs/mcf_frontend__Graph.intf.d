lib/frontend/graph.mli: Mcf_workloads
