lib/frontend/graph.ml: List Mcf_util Mcf_workloads Printf Stdlib
