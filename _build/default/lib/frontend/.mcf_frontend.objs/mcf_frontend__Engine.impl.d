lib/frontend/engine.ml: Array Graph Hashtbl List Mcf_baselines Mcf_gpu Mcf_search Mcf_util Mcf_workloads
