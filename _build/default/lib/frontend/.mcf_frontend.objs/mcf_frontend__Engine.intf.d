lib/frontend/engine.mli: Graph Mcf_gpu
