lib/frontend/opgraph.mli: Mcf_gpu Mcf_ir Mcf_workloads
