lib/frontend/opgraph.ml: Hashtbl List Mcf_gpu Mcf_ir Mcf_workloads Printf String
