(** End-to-end execution engines (§VI-C).

    An engine is a compiler configuration for a whole network: how the
    non-MBCI operators are generated (Relay templates, Ansor tuning, BOLT's
    CUTLASS + epilogue fusion) and whether MBCI sub-graphs are routed to
    MCFuser.  The five engines of Fig. 9 are provided: Relay, BOLT,
    Ansor, MCFuser+Relay and MCFuser+Ansor.

    Tuning cost is accounted per {e unique} operator shape (compilers cache
    tuned schedules across identical layers), on the same virtual clock as
    the sub-graph experiments. *)

type kind =
  | Relay_engine
  | Ansor_engine
  | Bolt_engine
  | Mcfuser_with of kind  (** MBCI sub-graphs to MCFuser, rest to [kind]. *)

type report = {
  engine : string;
  model : string;
  latency_s : float;  (** One forward pass. *)
  attention_s : float;  (** Time inside MBCI sub-graphs. *)
  kernel_launches : int;
  tuning_virtual_s : float;
  tuning_wall_s : float;
}

val name : kind -> string

val run : kind -> Mcf_gpu.Spec.t -> Graph.t -> report

val attention_fraction :
  Mcf_gpu.Spec.t -> Graph.t -> flops_fraction:bool -> float
(** §II-A motivation: self-attention's share of FLOPs
    ([flops_fraction = true]) or of eager execution time (false). *)

val ansor_e2e_trials_per_task : int ref
(** Ansor's end-to-end budget per unique operator task (default 600). *)
