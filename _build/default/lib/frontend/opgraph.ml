type op_kind =
  | Input of { shape : int list }
  | Matmul of { batch : int; m : int; n : int; k : int; transpose_b : bool }
  | Scale of float
  | Softmax
  | Gelu
  | Bias_add
  | Layernorm
  | Residual_add
  | Transpose_heads
  | Fused of Mcf_ir.Chain.t

type node = {
  id : int;
  name : string;
  kind : op_kind;
  inputs : int list;
}

type t = {
  nodes : node list;
}

let node t id = List.find (fun n -> n.id = id) t.nodes

let consumers t id = List.filter (fun n -> List.mem id n.inputs) t.nodes

let validate t =
  let seen = Hashtbl.create 16 in
  let rec go = function
    | [] -> Ok ()
    | n :: rest ->
      if Hashtbl.mem seen n.id then
        Error (Printf.sprintf "duplicate node id %d" n.id)
      else if List.exists (fun i -> not (Hashtbl.mem seen i)) n.inputs then
        Error (Printf.sprintf "node %d uses an input defined later" n.id)
      else begin
        Hashtbl.add seen n.id ();
        go rest
      end
  in
  go t.nodes

let kind_to_string = function
  | Input { shape } ->
    Printf.sprintf "input[%s]"
      (String.concat "x" (List.map string_of_int shape))
  | Matmul { batch; m; n; k; transpose_b } ->
    Printf.sprintf "matmul[b%d %dx%dx%d%s]" batch m n k
      (if transpose_b then " B^T" else "")
  | Scale c -> Printf.sprintf "scale[%g]" c
  | Softmax -> "softmax"
  | Gelu -> "gelu"
  | Bias_add -> "bias_add"
  | Layernorm -> "layernorm"
  | Residual_add -> "residual_add"
  | Transpose_heads -> "transpose_heads"
  | Fused chain -> Printf.sprintf "FUSED{%s}" chain.Mcf_ir.Chain.cname

let to_string t =
  t.nodes
  |> List.map (fun n ->
         Printf.sprintf "%3d %-18s %-28s <- [%s]" n.id n.name
           (kind_to_string n.kind)
           (String.concat ", " (List.map string_of_int n.inputs)))
  |> String.concat "\n"
  |> fun s -> s ^ "\n"

(* --- model import ---------------------------------------------------------- *)

let bert_layer (cfg : Mcf_workloads.Configs.bert_config) =
  let s = cfg.seq and hd = cfg.hidden in
  let dh = hd / cfg.bheads in
  let n id name kind inputs = { id; name; kind; inputs } in
  { nodes =
      [ n 0 "hidden_states" (Input { shape = [ s; hd ] }) [];
        n 1 "qkv_proj"
          (Matmul { batch = 1; m = s; n = 3 * hd; k = hd; transpose_b = false })
          [ 0 ];
        n 2 "qkv_bias" Bias_add [ 1 ];
        n 3 "split_q" Transpose_heads [ 2 ];
        n 4 "split_k" Transpose_heads [ 2 ];
        n 5 "split_v" Transpose_heads [ 2 ];
        n 6 "scores"
          (Matmul
             { batch = cfg.bheads; m = s; n = s; k = dh; transpose_b = true })
          [ 3; 4 ];
        n 7 "scale" (Scale (1.0 /. sqrt (float_of_int dh))) [ 6 ];
        n 8 "probs" Softmax [ 7 ];
        n 9 "context"
          (Matmul
             { batch = cfg.bheads; m = s; n = dh; k = s; transpose_b = false })
          [ 8; 5 ];
        n 10 "merge_heads" Transpose_heads [ 9 ];
        n 11 "out_proj"
          (Matmul { batch = 1; m = s; n = hd; k = hd; transpose_b = false })
          [ 10 ];
        n 12 "out_bias" Bias_add [ 11 ];
        n 13 "residual1" Residual_add [ 12; 0 ];
        n 14 "ln1" Layernorm [ 13 ];
        n 15 "ffn_up"
          (Matmul
             { batch = 1; m = s; n = cfg.intermediate; k = hd;
               transpose_b = false })
          [ 14 ];
        n 16 "ffn_bias1" Bias_add [ 15 ];
        n 17 "ffn_gelu" Gelu [ 16 ];
        n 18 "ffn_down"
          (Matmul
             { batch = 1; m = s; n = hd; k = cfg.intermediate;
               transpose_b = false })
          [ 17 ];
        n 19 "ffn_bias2" Bias_add [ 18 ];
        n 20 "residual2" Residual_add [ 19; 14 ];
        n 21 "ln2" Layernorm [ 20 ] ] }

(* --- partitioning ----------------------------------------------------------- *)

type match_report = {
  fused_attention : int;
  fused_chains : int;
  rejected_compute_bound : int;
}

(* A node is absorbable into a chain only when the chain is its sole
   consumer — otherwise its value escapes and must stay materialized. *)
let sole_consumer t id =
  match consumers t id with [ c ] -> Some c | _ -> None

(* Follow an optional single-consumer path of "epilogue-ish" ops from [id],
   returning (absorbed ids, terminal node of the path). *)
let rec follow_epilogues t absorbed id ~allowed =
  match sole_consumer t id with
  | Some c ->
    let is_allowed =
      match c.kind with
      | Scale _ -> List.mem `Scale allowed
      | Gelu -> List.mem `Gelu allowed
      | Bias_add -> List.mem `Bias allowed
      | Input _ | Matmul _ | Softmax | Layernorm | Residual_add
      | Transpose_heads | Fused _ ->
        false
    in
    if is_allowed then follow_epilogues t (c.id :: absorbed) c.id ~allowed
    else (absorbed, node t id)
  | None -> (absorbed, node t id)

(* Rewrite: replace the pattern's nodes with one Fused node that reuses the
   terminal node's id, so downstream references stay valid. *)
let rewrite t ~removed ~fused_node =
  { nodes =
      List.filter_map
        (fun n ->
          if n.id = fused_node.id then Some fused_node
          else if List.mem n.id removed then None
          else Some n)
        t.nodes }

(* Matmul -> (Scale) -> Softmax -> Matmul, every link single-consumer and
   the softmax feeding the second matmul's first operand. *)
let match_attention t (first : node) =
  match first.kind with
  | Matmul { batch; m; n; k; _ } -> (
    let absorbed, last_epi =
      follow_epilogues t [] first.id ~allowed:[ `Scale ]
    in
    match sole_consumer t last_epi.id with
    | Some ({ kind = Softmax; _ } as sm) -> (
      match sole_consumer t sm.id with
      | Some ({ kind = Matmul { n = h; _ }; inputs = i1 :: i2 :: _; _ } as second)
        when i1 = sm.id ->
        let chain = Mcf_ir.Chain.attention ~heads:batch ~m ~n ~k ~h () in
        let fused_node =
          { id = second.id;
            name = first.name ^ "..." ^ second.name;
            kind = Fused chain;
            inputs = first.inputs @ [ i2 ] }
        in
        Some
          (rewrite t
             ~removed:(first.id :: sm.id :: absorbed)
             ~fused_node)
      | Some _ | None -> None)
    | Some _ | None -> None)
  | Input _ | Scale _ | Softmax | Gelu | Bias_add | Layernorm
  | Residual_add | Transpose_heads | Fused _ ->
    None

(* Matmul -> (Bias/Gelu/Scale)* -> Matmul: structural match, then the MBCI
   intensity test decides whether fusing can pay off at all. *)
let match_chain (spec : Mcf_gpu.Spec.t) t (first : node) =
  match first.kind with
  | Matmul { batch; m; n; k; _ } -> (
    let absorbed, last_epi =
      follow_epilogues t [] first.id ~allowed:[ `Bias; `Gelu; `Scale ]
    in
    let has_gelu =
      List.exists
        (fun id -> match (node t id).kind with Gelu -> true | _ -> false)
        absorbed
    in
    match sole_consumer t last_epi.id with
    | Some ({ kind = Matmul { n = h; batch = b2; _ }; inputs = i1 :: rest; _ }
            as second)
      when i1 = last_epi.id && b2 = batch ->
      let chain =
        if has_gelu then Mcf_ir.Chain.mlp_chain ~batch ~m ~n ~k ~h ()
        else Mcf_ir.Chain.gemm_chain ~batch ~m ~n ~k ~h ()
      in
      let intensity =
        Mcf_ir.Chain.total_flops chain
        /. Mcf_ir.Chain.unfused_traffic_bytes chain
             ~elem_bytes:spec.elem_bytes
      in
      if intensity >= Mcf_gpu.Spec.roofline_ratio spec then Some `Compute_bound
      else begin
        let fused_node =
          { id = second.id;
            name = first.name ^ "..." ^ second.name;
            kind = Fused chain;
            inputs = first.inputs @ rest }
        in
        Some (`Fused (rewrite t ~removed:(first.id :: absorbed) ~fused_node))
      end
    | Some _ | None -> None)
  | Input _ | Scale _ | Softmax | Gelu | Bias_add | Layernorm
  | Residual_add | Transpose_heads | Fused _ ->
    None

let partition spec t =
  let report =
    ref { fused_attention = 0; fused_chains = 0; rejected_compute_bound = 0 }
  in
  (* run to fixpoint: each rewrite may expose further matches *)
  let rec attention_pass t =
    let hit =
      List.find_map (fun n -> match_attention t n) t.nodes
    in
    match hit with
    | Some t' ->
      report := { !report with fused_attention = !report.fused_attention + 1 };
      attention_pass t'
    | None -> t
  in
  let rec chain_pass rejected_ids t =
    let hit =
      List.find_map
        (fun n ->
          if List.mem n.id rejected_ids then None
          else
            match match_chain spec t n with
            | Some r -> Some (n.id, r)
            | None -> None)
        t.nodes
    in
    match hit with
    | Some (_, `Fused t') ->
      report := { !report with fused_chains = !report.fused_chains + 1 };
      chain_pass rejected_ids t'
    | Some (id, `Compute_bound) ->
      report :=
        { !report with
          rejected_compute_bound = !report.rejected_compute_bound + 1 };
      chain_pass (id :: rejected_ids) t
    | None -> t
  in
  let t = attention_pass t in
  let t = chain_pass [] t in
  (t, !report)

let fused_chains t =
  List.filter_map
    (fun n -> match n.kind with Fused chain -> Some chain | _ -> None)
    t.nodes
