type kind =
  | Relay_engine
  | Ansor_engine
  | Bolt_engine
  | Mcfuser_with of kind

type report = {
  engine : string;
  model : string;
  latency_s : float;
  attention_s : float;
  kernel_launches : int;
  tuning_virtual_s : float;
  tuning_wall_s : float;
}

let rec name = function
  | Relay_engine -> "Relay"
  | Ansor_engine -> "Ansor"
  | Bolt_engine -> "BOLT"
  | Mcfuser_with k -> "MCFuser+" ^ name k

let ansor_e2e_trials_per_task = ref 450

(* Non-MBCI code generation characteristics per compiler.  BOLT's pattern
   table covers GEMM+bias(+ReLU) epilogues with CUTLASS; anything outside
   it — including GELU activations and attention — is left to Relay's
   implementations (§VI-C: "only slight improvements" over Relay). *)
let rec gemm_quality = function
  | Relay_engine | Bolt_engine -> `Fixed (64, 64, 32)
  | Ansor_engine -> `Cublas
  | Mcfuser_with k -> gemm_quality k

let rec math_derate = function
  | Relay_engine | Bolt_engine -> 3.0 (* generic TOPI templates, no MMA *)
  | Ansor_engine -> 2.0 (* tuned schedules, partial tensorization *)
  | Mcfuser_with k -> math_derate k

let rec matches_bolt_pattern = function
  | Bolt_engine -> true
  | Relay_engine | Ansor_engine -> false
  | Mcfuser_with k -> matches_bolt_pattern k

let uses_mcfuser = function
  | Mcfuser_with _ -> true
  | Relay_engine | Ansor_engine | Bolt_engine -> false

let sim_time spec kernel =
  match Mcf_gpu.Sim.run spec kernel with
  | Ok v -> v.Mcf_gpu.Sim.time_s
  | Error e -> failwith (Mcf_gpu.Sim.string_of_error e)

let dense_time kind spec ~m ~n ~k =
  let kernel = Mcf_baselines.Op_kernels.gemm ~quality:(gemm_quality kind) spec ~batch:1 ~m ~n ~k in
  sim_time spec (Mcf_baselines.Backend.derate_math (math_derate kind) kernel)

let memory_time spec ~name ~read ~write ~flops =
  sim_time spec
    (Mcf_baselines.Op_kernels.memory_op spec ~name ~read_elems:read
       ~write_elems:write ~flops_per_elem:flops)

(* Unfused attention as a graph executes it: head split/transpose layout
   kernels for Q/K/V, two batched GEMMs, mask add, softmax, and the output
   head merge — the kernel zoo a fused MBCI kernel replaces. *)
let attention_unfused kind spec (cfg : Mcf_workloads.Configs.attention_config) =
  let derate = Mcf_baselines.Backend.derate_math (math_derate kind) in
  let f = float_of_int in
  let qkv_elems = f cfg.heads *. f cfg.sm *. f cfg.sk in
  let score_elems = f cfg.heads *. f cfg.sm *. f cfg.sn in
  let layout name elems =
    Mcf_baselines.Op_kernels.memory_op spec ~name ~read_elems:elems
      ~write_elems:elems ~flops_per_elem:0.0
  in
  let bmm1 =
    Mcf_baselines.Op_kernels.gemm ~quality:(gemm_quality kind) spec
      ~batch:cfg.heads ~m:cfg.sm ~n:cfg.sn ~k:cfg.sk
  in
  let bmm2 =
    Mcf_baselines.Op_kernels.gemm ~quality:(gemm_quality kind) spec
      ~batch:cfg.heads ~m:cfg.sm ~n:cfg.sh ~k:cfg.sn
  in
  let softmax =
    Mcf_baselines.Op_kernels.softmax_kernels ~fused:true spec
      ~rows:(f cfg.heads *. f cfg.sm)
      ~cols:cfg.sn
  in
  let kernels =
    [ layout "attn.split_q" qkv_elems;
      layout "attn.split_k" qkv_elems;
      layout "attn.split_v" qkv_elems;
      derate bmm1;
      layout "attn.mask" score_elems ]
    @ softmax
    @ [ derate bmm2; layout "attn.merge_heads" qkv_elems ]
  in
  ( Mcf_util.Listx.sum_by (sim_time spec) kernels,
    List.length kernels )

type tuned_attention = {
  att_time : float;
  att_tuning : float;
}

let attention_mcfuser spec (cfg : Mcf_workloads.Configs.attention_config) =
  let chain = Mcf_workloads.Configs.attention cfg in
  match Mcf_search.Tuner.tune spec chain with
  | Ok o ->
    { att_time = o.kernel_time_s; att_tuning = o.tuning_virtual_s }
  | Error Mcf_search.Tuner.No_viable_candidate ->
    (* fall back to the host engine's unfused path; tuning cost of the
       failed exploration is small and ignored *)
    { att_time = fst (attention_unfused Relay_engine spec cfg);
      att_tuning = 0.0 }

(* Per-engine tuning-cost model, charged per unique task (compilers cache
   across identical layers) except BOLT/Relay whose cost scales with
   instantiated operators. *)
let relay_cost_per_op = 0.7
let bolt_base_s = 45.0
let bolt_cost_per_dense = 3.2
let ansor_compile_s = 4.5

let run kind spec (graph : Graph.t) =
  let clock = Mcf_gpu.Clock.create () in
  let dispatch = Mcf_baselines.Backend.graph_dispatch_s in
  let run_once () =
    let dense_cache = Hashtbl.create 16 in
    let attn_cache = Hashtbl.create 4 in
    let latency = ref 0.0 in
    let attention = ref 0.0 in
    let launches = ref 0 in
    let add_kernels t n =
      latency := !latency +. t +. (dispatch *. float_of_int n);
      launches := !launches + n
    in
    let cutlass_dense_time ~m ~n ~k =
      match Hashtbl.find_opt dense_cache ("cutlass", m, n, k) with
      | Some t -> t
      | None ->
        let kernel =
          Mcf_baselines.Op_kernels.gemm ~quality:`Cublas spec ~batch:1 ~m ~n ~k
        in
        let t = sim_time spec kernel in
        Hashtbl.add dense_cache ("cutlass", m, n, k) t;
        t
    in
    let ops = Array.of_list graph.ops in
    let skip = Hashtbl.create 8 in
    Array.iteri
      (fun i (op : Graph.op) ->
        if Hashtbl.mem skip i then ()
        else
        match op with
        | Graph.Dense { m; n; k; _ } ->
          let bolt_fused =
            (* BOLT's pattern table: dense+bias with CUTLASS-compatible
               operand layout.  Packed projections (QKV, n = 3*hidden) and
               GELU epilogues are not in the table, leaving those operators
               to Relay (§VI-C). *)
            matches_bolt_pattern kind
            && n <= 1024
            && i + 1 < Array.length ops
            && (match ops.(i + 1) with Graph.Bias_add _ -> true | _ -> false)
          in
          if bolt_fused then begin
            (* GEMM+bias hits BOLT's pattern table: one CUTLASS kernel. *)
            Hashtbl.add skip (i + 1) ();
            add_kernels (cutlass_dense_time ~m ~n ~k) 1
          end
          else begin
            let t =
              match Hashtbl.find_opt dense_cache ("host", m, n, k) with
              | Some t -> t
              | None ->
                let t = dense_time kind spec ~m ~n ~k in
                Hashtbl.add dense_cache ("host", m, n, k) t;
                t
            in
            add_kernels t 1
          end
        | Graph.Mbci_attention { cfg; _ } ->
          if uses_mcfuser kind then begin
            let r =
              match Hashtbl.find_opt attn_cache cfg.sname with
              | Some r -> r
              | None ->
                let r = attention_mcfuser spec cfg in
                Mcf_gpu.Clock.charge clock r.att_tuning;
                Hashtbl.add attn_cache cfg.sname r;
                r
            in
            attention := !attention +. r.att_time;
            add_kernels r.att_time 1
          end
          else begin
            let t, n = attention_unfused kind spec cfg in
            attention := !attention +. t;
            add_kernels t n
          end
        | Graph.Bias_gelu { elems; _ } ->
          add_kernels
            (memory_time spec ~name:"bias_gelu" ~read:elems ~write:elems
               ~flops:8.0)
            1
        | Graph.Bias_add { elems; _ } ->
          add_kernels
            (memory_time spec ~name:"bias" ~read:elems ~write:elems ~flops:1.0)
            1
        | Graph.Residual_layernorm { rows; cols; _ } ->
          let elems = rows *. float_of_int cols in
          add_kernels
            (memory_time spec ~name:"ln" ~read:(2.0 *. elems) ~write:elems ~flops:8.0)
            1)
      ops;
    (* tuning-cost accounting for the non-MBCI side *)
    let denses = Graph.unique_dense_shapes graph in
    let attns = Graph.attention_configs graph in
    let dense_instances =
      List.length
        (List.filter (function Graph.Dense _ -> true | _ -> false) graph.ops)
    in
    let rec charge_host = function
      | Relay_engine ->
        Mcf_gpu.Clock.charge clock
          (relay_cost_per_op *. float_of_int (List.length graph.ops))
      | Bolt_engine ->
        Mcf_gpu.Clock.charge clock
          (bolt_base_s +. (bolt_cost_per_dense *. float_of_int dense_instances))
      | Ansor_engine ->
        let tasks =
          List.length denses
          + if uses_mcfuser kind then 0 else 2 * List.length attns
        in
        Mcf_gpu.Clock.charge clock
          (float_of_int (tasks * !ansor_e2e_trials_per_task) *. ansor_compile_s)
      | Mcfuser_with k -> charge_host k
    in
    charge_host kind;
    (!latency, !attention, !launches)
  in
  let (latency_s, attention_s, kernel_launches), wall =
    Mcf_gpu.Clock.with_wall_clock run_once
  in
  { engine = name kind;
    model = graph.gname;
    latency_s;
    attention_s;
    kernel_launches;
    tuning_virtual_s = Mcf_gpu.Clock.elapsed_s clock;
    tuning_wall_s = wall }

let attention_fraction spec (graph : Graph.t) ~flops_fraction =
  if flops_fraction then begin
    let attn_flops =
      Mcf_util.Listx.sum_by
        (function
          | Graph.Mbci_attention { cfg = a; _ } ->
            let f = float_of_int in
            2.0 *. f a.heads *. f a.sm *. f a.sn *. (f a.sk +. f a.sh)
          | Graph.Dense _ | Graph.Bias_gelu _ | Graph.Bias_add _
          | Graph.Residual_layernorm _ -> 0.0)
        graph.ops
    in
    attn_flops /. graph.flops
  end
  else
    Graph.attention_time_fraction graph
      ~dense_time:(fun (m, n, k) ->
        dense_time Relay_engine spec ~m ~n ~k)
      ~attn_time:(fun cfg -> fst (attention_unfused Relay_engine spec cfg))
