type role = Spatial | Reduce

type t = { name : string; size : int; role : role }

let spatial name size = { name; size; role = Spatial }
let reduce name size = { name; size; role = Reduce }

let is_spatial a = a.role = Spatial
let is_reduce a = a.role = Reduce

let equal a b = String.equal a.name b.name
let compare a b = String.compare a.name b.name

let find name axes = List.find (fun a -> String.equal a.name name) axes
let mem a axes = List.exists (equal a) axes

let names axes = String.concat "" (List.map (fun a -> a.name) axes)

let pp ppf a =
  Format.fprintf ppf "%s[%d,%s]" a.name a.size
    (match a.role with Spatial -> "S" | Reduce -> "R")
