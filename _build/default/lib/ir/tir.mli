(** A TIR-like scheduled loop-nest representation (§V-B).

    The paper's front-end keeps two mutually-convertible views of an MBCI
    sub-graph: the high-level {e tiling expression} this library searches
    over, and a TVM TIR module produced by applying [tile]/[split]/
    [reorder]/[bind] schedule primitives.  A "TIR AST visitor" then
    extracts the tiling expression back out of a TIR module.

    This module reproduces that round trip:

    - {!of_candidate} builds the scheduled nest for a candidate by applying
      the same primitive sequence TVM would (split every cross-tile axis
      into an outer cross-tile loop and an inner intra-tile loop, reorder
      the outers per the tiling expression, bind the hoistable spatial
      outers to [blockIdx.x]);
    - {!extract} is the AST visitor recovering the tiling expression and
      tile sizes from a nest;
    - {!pretty} renders TVMScript-style source for inspection.

    Memory statements (cache reads/writes) are deliberately absent here:
    in the paper's flow they are introduced by the later memory-access
    optimization (§III-B), which this library performs on the
    {!Program.t} side. *)

type loop_kind =
  | Serial
  | Block_binding  (** Bound to [blockIdx.x]. *)

type loop = {
  lvar : string;  (** Loop variable, e.g. ["m_0"] for the cross-tile m. *)
  laxis : string;  (** The chain axis this loop iterates. *)
  extent : int;  (** Trip count. *)
  step : int;  (** Tile extent the variable advances by. *)
  kind : loop_kind;
}

type node =
  | For of loop * node list
  | Block of {
      bname : string;
      reads : (string * string list) list;
          (** Buffer -> index variables, e.g. [("A", \["m_0"; "k_0"\])]. *)
      writes : (string * string list) list;
      init : bool;  (** Has a reduction-init statement. *)
    }

type t = {
  chain : Chain.t;
  roots : node list;
}

val of_candidate : Chain.t -> Candidate.t -> t
(** Apply the schedule-primitive sequence for a candidate. *)

val extract : t -> Candidate.t
(** The TIR AST visitor: recover tiling expression + tile sizes.
    [extract (of_candidate chain c)] is Rule-1-equivalent to [c]: it lowers
    to an identical per-block program (for canonical candidates it is
    identical up to {!Candidate.key}).
    @raise Invalid_argument on a nest the visitor does not recognize
    (e.g. flat forms whose sequential groups do not map one-per-block). *)

val pretty : t -> string
(** TVMScript-style rendering. *)

val loop_count : t -> int
(** Number of [For] nodes (used by tests and reports). *)
