lib/ir/candidate.ml: Axis Format List Printf String Tiling
