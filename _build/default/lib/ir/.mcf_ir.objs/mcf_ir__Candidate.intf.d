lib/ir/candidate.mli: Axis Format Tiling
