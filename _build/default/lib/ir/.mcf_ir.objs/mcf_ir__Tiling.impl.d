lib/ir/tiling.ml: Axis Chain Format List Mcf_util Printf String
