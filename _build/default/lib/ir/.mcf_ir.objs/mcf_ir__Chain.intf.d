lib/ir/chain.mli: Axis Format
