lib/ir/axis.mli: Format
