lib/ir/axis.ml: Format List String
