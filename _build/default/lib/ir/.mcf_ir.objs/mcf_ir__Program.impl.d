lib/ir/program.ml: Axis Buffer Candidate Chain Hashtbl List Option Printf String Tiling
