lib/ir/program.mli: Axis Candidate Chain
