lib/ir/lower.ml: Axis Candidate Chain List Mcf_gpu Mcf_util Printf Program
