lib/ir/lower.mli: Candidate Chain Mcf_gpu Program
