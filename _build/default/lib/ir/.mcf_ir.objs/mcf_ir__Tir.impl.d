lib/ir/tir.ml: Axis Buffer Candidate Chain Hashtbl List Printf Program String Tiling
