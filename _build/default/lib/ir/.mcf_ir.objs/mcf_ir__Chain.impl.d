lib/ir/chain.ml: Axis Float Format List Mcf_util Printf Result String
