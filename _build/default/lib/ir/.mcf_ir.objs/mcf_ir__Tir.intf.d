lib/ir/tir.mli: Candidate Chain
