lib/ir/tiling.mli: Axis Chain Format
