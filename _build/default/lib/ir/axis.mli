(** Cross-tile loop axes.

    An MBCI operator chain is decomposed into computation blocks surrounded
    by cross-tile loops (§III-A); each loop iterates over tiles of one named
    axis.  An axis is [Spatial] when it indexes the chain's final output
    (its iterations are independent, so it may be bound to [blockIdx]) and
    [Reduce] when some block sums over it. *)

type role = Spatial | Reduce

type t = { name : string; size : int; role : role }

val spatial : string -> int -> t
val reduce : string -> int -> t

val is_spatial : t -> bool
val is_reduce : t -> bool

val equal : t -> t -> bool
(** Structural equality; axes are compared by name (names are unique within
    a chain). *)

val compare : t -> t -> int

val find : string -> t list -> t
(** @raise Not_found when no axis has that name. *)

val mem : t -> t list -> bool

val names : t list -> string
(** Concatenated axis names, e.g. "mhnk" — the paper's notation for deep
    tiling expressions. *)

val pp : Format.formatter -> t -> unit
