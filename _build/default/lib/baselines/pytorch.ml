open Mcf_ir

(* One kernel per operator: a batched GEMM per contraction block, plus the
   eager softmax sequence for softmax epilogues. *)
let chain_kernels ?(gemm_quality = `Cublas) ?(fused_softmax = false) spec
    (chain : Chain.t) =
  List.concat_map
    (fun (b : Chain.block) ->
      let m, n =
        match b.out.taxes with
        | [ a1; a2 ] -> (a1.Axis.size, a2.Axis.size)
        | _ -> invalid_arg "baseline: rank-2 block outputs expected"
      in
      let k =
        match b.reduce_axes with
        | [ a ] -> a.Axis.size
        | _ -> invalid_arg "baseline: single reduction axis expected"
      in
      let gemm =
        Op_kernels.gemm ~quality:gemm_quality spec ~batch:chain.batch ~m ~n ~k
      in
      let epilogue =
        match b.epilogue with
        | Chain.No_epilogue -> []
        | Chain.Scale _ ->
          if fused_softmax then [] (* folded into the producing kernel *)
          else begin
            let elems =
              float_of_int (chain.batch * m * n)
            in
            [ Op_kernels.memory_op spec ~name:(b.bname ^ ".scale")
                ~read_elems:elems ~write_elems:elems ~flops_per_elem:1.0 ]
          end
        | Chain.Unary { uflops; _ } ->
          (* a separate activation kernel over the intermediate *)
          let elems = float_of_int (chain.batch * m * n) in
          [ Op_kernels.memory_op spec ~name:(b.bname ^ ".act")
              ~read_elems:elems ~write_elems:elems ~flops_per_elem:uflops ]
        | Chain.Softmax _ ->
          Op_kernels.softmax_kernels ~fused:fused_softmax spec
            ~rows:(float_of_int (chain.batch * m))
            ~cols:n
      in
      gemm :: epilogue)
    chain.blocks

let tune spec (chain : Chain.t) =
  match
    Backend.run_kernels ~dispatch_s:Backend.eager_dispatch_s spec
      (chain_kernels spec chain)
  with
  | Error msg -> Error (Backend.Unsupported msg)
  | Ok time_s ->
    Ok
      { Backend.backend = "PyTorch";
        kernels = chain_kernels spec chain;
        time_s;
        tuning_virtual_s = 0.0;
        tuning_wall_s = 0.0;
        fused = false;
        note = None }

let backend = { Backend.name = "PyTorch"; tune }
