lib/baselines/flash_attention.ml: Backend Candidate Chain Mcf_codegen Mcf_gpu Mcf_ir Tiling
