lib/baselines/relay.ml: Backend Mcf_ir Pytorch
