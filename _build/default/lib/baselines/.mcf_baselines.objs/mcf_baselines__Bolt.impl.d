lib/baselines/bolt.ml: Axis Backend Candidate Chain List Mcf_codegen Mcf_gpu Mcf_ir Mcf_util Pytorch Result Tiling
