lib/baselines/backend.ml: List Mcf_gpu Mcf_ir String
