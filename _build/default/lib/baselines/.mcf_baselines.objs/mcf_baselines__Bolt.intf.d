lib/baselines/bolt.mli: Backend
