lib/baselines/pytorch.mli: Backend Mcf_gpu Mcf_ir
