lib/baselines/chimera.mli: Backend
