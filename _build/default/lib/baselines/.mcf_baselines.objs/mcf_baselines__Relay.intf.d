lib/baselines/relay.mli: Backend
