lib/baselines/xgb.mli: Mcf_ir
