lib/baselines/mcfuser_backend.ml: Backend Mcf_search
