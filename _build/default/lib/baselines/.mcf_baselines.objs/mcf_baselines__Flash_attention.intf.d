lib/baselines/flash_attention.mli: Backend
