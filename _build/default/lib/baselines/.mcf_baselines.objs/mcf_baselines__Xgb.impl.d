lib/baselines/xgb.ml: Array Float List Mcf_ir Mcf_model
