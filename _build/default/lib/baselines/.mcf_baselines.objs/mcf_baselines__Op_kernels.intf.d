lib/baselines/op_kernels.mli: Mcf_gpu
