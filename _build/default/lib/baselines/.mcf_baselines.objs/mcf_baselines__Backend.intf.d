lib/baselines/backend.mli: Mcf_gpu Mcf_ir
