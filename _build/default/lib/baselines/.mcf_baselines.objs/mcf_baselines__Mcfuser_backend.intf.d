lib/baselines/mcfuser_backend.mli: Backend Mcf_search
