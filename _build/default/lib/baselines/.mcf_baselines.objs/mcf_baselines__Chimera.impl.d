lib/baselines/chimera.ml: Backend Int64 Mcf_codegen Mcf_gpu Mcf_ir Mcf_search Mcf_util Result
