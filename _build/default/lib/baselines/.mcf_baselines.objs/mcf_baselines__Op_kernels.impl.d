lib/baselines/op_kernels.ml: Axis Candidate Chain Float List Mcf_codegen Mcf_gpu Mcf_ir Mcf_util Printf Tiling
