lib/baselines/pytorch.ml: Axis Backend Chain List Mcf_ir Op_kernels
