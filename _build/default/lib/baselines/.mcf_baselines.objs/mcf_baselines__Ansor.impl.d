lib/baselines/ansor.ml: Array Backend Candidate Chain Float Hashtbl Int64 List Mcf_codegen Mcf_gpu Mcf_ir Mcf_search Mcf_util Pytorch Result Xgb
