lib/baselines/ansor.mli: Backend
