(** The Ansor baseline (§VI-A: 1000 tuning trials per sub-graph).

    Modeled with its documented characteristics relative to MCFuser:

    - search space: loop-transformation sketches = deep tiling only, with
      the Ansor/Chimera hoisting rule (no dead-loop elimination — the
      [GetLastReduceIteratorInOutermostReduceTile] limitation of §II-B);
    - exploration: an evolutionary loop guided by a gradient-boosted cost
      model ({!Xgb}) retrained on every measured batch — each of the 1000
      trials pays TVM + nvcc compilation on the virtual clock, which is
      where Table IV's hours come from;
    - code quality: Ansor's generated kernels do not reach tensor-core
      peak (its auto-scheduling targets CUDA cores); math throughput is
      derated by {!math_penalty};
    - fusion coverage: chains with batch > {!max_fusable_batch} fall back
      to unfused per-operator execution (the G12 failure of §VI-B). *)

val math_penalty : float
(** Ansor kernels reach ~1/3 of MMA peak. *)

val max_fusable_batch : int

val trials : int ref
(** Measurement budget per sub-graph (paper setting: 1000).  Mutable so
    experiments can shrink it for quick runs. *)

val backend : Backend.t
