(** The Relay (TVM default-schedule) baseline: per-operator execution from
    pre-defined TOPI templates without auto-tuning.  Relative to eager
    PyTorch it fuses elementwise epilogues into one softmax kernel but its
    GEMM templates are not shape-dispatched, so kernel quality trails
    cuBLAS (§VI-C). *)

val backend : Backend.t
