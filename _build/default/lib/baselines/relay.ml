let relay_template = `Fixed (64, 64, 32)

let tune spec (chain : Mcf_ir.Chain.t) =
  let kernels =
    Pytorch.chain_kernels ~gemm_quality:relay_template ~fused_softmax:true spec
      chain
  in
  match Backend.run_kernels ~dispatch_s:Backend.graph_dispatch_s spec kernels with
  | Error msg -> Error (Backend.Unsupported msg)
  | Ok time_s ->
    Ok
      { Backend.backend = "Relay";
        kernels;
        time_s;
        tuning_virtual_s = 0.0;
        tuning_wall_s = 0.0;
        fused = false;
        note = Some "pre-defined templates, no tuning" }

let backend = { Backend.name = "Relay"; tune }
