(** The FlashAttention baseline: the handcrafted fused self-attention
    kernel (§VI-A, commit 57ee618 era).

    Modeled by its documented shape (§VI-B2): a fixed schedule that tiles
    only the M and N sequence dimensions (T_m = 128, T_n = 64) while K and
    H are kept whole, with online softmax; it requires K = H and a head
    dimension within the hand-written kernel's menu (<= 128).  No tuning —
    and no adaptation, which is why a searched schedule beats it on the
    small-sequence workloads of Table III. *)

val tile_m : int
val tile_n : int
val max_head_dim : int

val backend : Backend.t
