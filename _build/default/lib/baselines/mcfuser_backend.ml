let backend_of ~name ?options ?params () =
  let tune spec chain =
    match Mcf_search.Tuner.tune ?options ?params spec chain with
    | Error Mcf_search.Tuner.No_viable_candidate ->
      Error (Backend.Unsupported "no viable candidate in the search space")
    | Ok o ->
      Ok
        { Backend.backend = name;
          kernels = [ o.kernel ];
          time_s = o.kernel_time_s;
          tuning_virtual_s = o.tuning_virtual_s;
          tuning_wall_s = o.tuning_wall_s;
          fused = true;
          note = None }
  in
  { Backend.name; tune }

let backend = backend_of ~name:"MCFuser" ()
