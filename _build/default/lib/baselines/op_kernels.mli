(** Single-operator kernels — the building blocks of the unfused baselines
    (PyTorch/cuBLAS-style execution) and of the non-MBCI parts of
    end-to-end models.

    GEMMs are built through the same chain/lowering machinery as fused
    kernels (a one-block chain), with tile configurations chosen the way a
    vendor library does: the best of a small tuned table, selected
    offline — so no tuning cost is charged at run time.  Memory-bound
    elementwise/normalization operators are modeled directly by their
    traffic. *)

val gemm :
  ?quality:[ `Cublas | `Fixed of int * int * int ] ->
  Mcf_gpu.Spec.t ->
  batch:int ->
  m:int ->
  n:int ->
  k:int ->
  Mcf_gpu.Kernel.t
(** One (batched) GEMM kernel.  [`Cublas] picks the best tile from the
    vendor table via the simulator (cuBLAS's shape-dispatch heuristics);
    [`Fixed] forces one configuration (Relay's untuned templates). *)

val memory_op :
  Mcf_gpu.Spec.t ->
  name:string ->
  read_elems:float ->
  write_elems:float ->
  flops_per_elem:float ->
  Mcf_gpu.Kernel.t
(** A bandwidth-bound kernel (softmax pass, scaling, bias, layernorm,
    residual add, activation) characterized by its element traffic. *)

val softmax_kernels :
  ?fused:bool ->
  Mcf_gpu.Spec.t ->
  rows:float ->
  cols:int ->
  Mcf_gpu.Kernel.t list
(** The softmax of an attention score matrix.  [fused = true] (Relay/XLA
    style) emits one read+write kernel; [fused = false] (eager PyTorch)
    emits the scale / max-subtract-exp / normalize sequence. *)

val vendor_tile_table : (int * int * int) list
(** The cuBLAS-style tile menu, exposed for tests. *)
