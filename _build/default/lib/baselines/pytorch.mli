(** The PyTorch baseline: eager per-operator execution through vendor
    libraries (cuBLAS batched GEMMs, elementwise/softmax kernels), every
    intermediate round-tripping through global memory.  No tuning cost —
    and no fusion, which is exactly what Fig. 8 normalizes against. *)

val backend : Backend.t

val chain_kernels :
  ?gemm_quality:[ `Cublas | `Fixed of int * int * int ] ->
  ?fused_softmax:bool ->
  Mcf_gpu.Spec.t ->
  Mcf_ir.Chain.t ->
  Mcf_gpu.Kernel.t list
(** The unfused launch sequence for a chain, reused by Relay (fused
    softmax, fixed templates) and by the fallback paths of Ansor/BOLT. *)
