(** MCFuser-Chimera (§VI-A): Chimera's search strategy transplanted into
    the MCFuser framework for a controlled comparison.

    Differences from the full MCFuser tuner, per §II-B/§III:

    - deep tiling expressions only (nested block execution orders; no flat
      tiling);
    - memory statements hoisted to the outermost relevant loop but without
      dead-loop elimination;
    - candidates ranked by Chimera's analytical objective — minimize data
      movement — which ignores redundant computation and parallelism. *)

val backend : Backend.t
