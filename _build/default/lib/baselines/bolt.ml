open Mcf_ir

let template_menu =
  [ (64, 32, 64); (64, 32, 128); (64, 64, 64); (64, 64, 128);
    (128, 32, 64); (128, 32, 128); (128, 64, 64); (128, 64, 128);
    (64, 128, 64); (64, 128, 128); (128, 128, 64); (128, 128, 128);
    (256, 32, 64); (256, 32, 128); (256, 64, 64); (256, 64, 128) ]

let cutlass_compile_s = 1.7
let library_scan_s = 45.0
let measure_repeats = 10

let is_dual_gemm (chain : Chain.t) =
  List.length chain.blocks = 2
  && List.for_all
       (fun (b : Chain.block) ->
         match b.epilogue with
         | Chain.No_epilogue | Chain.Scale _ -> true
         | Chain.Softmax _ | Chain.Unary _ -> false)
       chain.blocks

let fused_candidates (chain : Chain.t) =
  let m = Chain.axis chain "m" in
  let n = Chain.axis chain "n" in
  let k = Chain.axis chain "k" in
  let h = Chain.axis chain "h" in
  let clamp (a : Axis.t) t = min t a.size in
  List.map
    (fun (tm, tk, th) ->
      Candidate.make
        (Tiling.Deep [ m; h; n; k ])
        [ ("m", clamp m tm);
          ("n", n.size);  (* the B2B constraint: full N per block *)
          ("k", clamp k tk);
          ("h", clamp h th) ])
    template_menu

let tune spec (chain : Chain.t) =
  if spec.Mcf_gpu.Spec.compute_capability = "sm86" then
    Error (Backend.Unsupported "BOLT does not support sm86 devices")
  else if not (is_dual_gemm chain) then
    Error
      (Backend.Unsupported
         "no fusion pattern (BOLT cannot fuse self-attention)")
  else begin
    let clock = Mcf_gpu.Clock.create () in
    let run () =
      Mcf_gpu.Clock.charge clock library_scan_s;
      let measured =
        List.filter_map
          (fun cand ->
            Mcf_gpu.Clock.charge_compile clock ~toolchain_s:cutlass_compile_s;
            match Mcf_codegen.Compile.compile_candidate spec chain cand with
            | Error _ -> None
            | Ok kernel -> (
              match Mcf_gpu.Sim.run spec kernel with
              | Error _ -> None
              | Ok v ->
                Mcf_gpu.Clock.charge_measure clock ~kernel_time_s:v.time_s
                  ~repeats:measure_repeats;
                Some (kernel, v.time_s)))
          (fused_candidates chain)
      in
      match Mcf_util.Listx.min_by snd measured with
      | Some (kernel, time_s) ->
        Ok
          { Backend.backend = "BOLT";
            kernels = [ kernel ];
            time_s;
            tuning_virtual_s = Mcf_gpu.Clock.elapsed_s clock;
            tuning_wall_s = 0.0;
            fused = true;
            note = None }
      | None -> (
        (* No template fits (tensors too large for full-N residency):
           run the chain as separate CUTLASS GEMMs. *)
        let kernels = Pytorch.chain_kernels ~fused_softmax:true spec chain in
        match
          Backend.run_kernels ~dispatch_s:Backend.graph_dispatch_s spec kernels
        with
        | Error msg -> Error (Backend.Unsupported msg)
        | Ok time_s ->
          Ok
            { Backend.backend = "BOLT";
              kernels;
              time_s;
              tuning_virtual_s = Mcf_gpu.Clock.elapsed_s clock;
              tuning_wall_s = 0.0;
              fused = false;
              note = Some "fallback: no template fits, unfused CUTLASS ops" })
    in
    let result, wall = Mcf_gpu.Clock.with_wall_clock run in
    Result.map
      (fun (o : Backend.outcome) -> { o with tuning_wall_s = wall })
      result
  end

let backend = { Backend.name = "BOLT"; tune }
