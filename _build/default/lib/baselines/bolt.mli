(** The BOLT baseline: CUTLASS-templated fusion (§II-B, §VI).

    BOLT fuses back-to-back GEMM pairs through a fixed template menu whose
    defining constraint is that each thread block covers the entire N
    dimension of the first GEMM (the intermediate never leaves the block).
    Every instantiated template is compiled and measured — that is its
    "mid" tuning cost in Table I/IV.  It cannot fuse self-attention (no
    pattern for softmax between the GEMMs) and does not support sm86
    devices at all (§VI-B); oversized shapes for which no template fits
    fall back to unfused CUTLASS operators (the G10-G12 behaviour). *)

val template_menu : (int * int * int) list
(** (T_m, T_k, T_h) choices; T_n is pinned to N. *)

val backend : Backend.t
