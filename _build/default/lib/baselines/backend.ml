type outcome = {
  backend : string;
  kernels : Mcf_gpu.Kernel.t list;
  time_s : float;
  tuning_virtual_s : float;
  tuning_wall_s : float;
  fused : bool;
  note : string option;
}

type failure = Unsupported of string

type t = {
  name : string;
  tune : Mcf_gpu.Spec.t -> Mcf_ir.Chain.t -> (outcome, failure) result;
}

let eager_dispatch_s = 8.0e-6
let graph_dispatch_s = 2.0e-6

let run_kernels ?(dispatch_s = 0.0) spec kernels =
  match Mcf_gpu.Sim.run_sequence spec kernels with
  | Ok t -> Ok (t +. (dispatch_s *. float_of_int (List.length kernels)))
  | Error e -> Error (Mcf_gpu.Sim.string_of_error e)

let derate_math factor (k : Mcf_gpu.Kernel.t) =
  { k with
    Mcf_gpu.Kernel.computes =
      List.map
        (fun (c : Mcf_gpu.Kernel.compute) ->
          let is_epilogue =
            String.length c.clabel >= 4
            && String.sub c.clabel (String.length c.clabel - 4) 4 = "!epi"
          in
          if is_epilogue then c
          else { c with flops_per_block = c.flops_per_block *. factor })
        k.computes }
