(** MCFuser itself packaged behind the common backend interface, so the
    evaluation harness runs all systems through one code path. *)

val backend : Backend.t

val backend_of :
  name:string ->
  ?options:Mcf_search.Space.options ->
  ?params:Mcf_search.Explore.params ->
  unit ->
  Backend.t
(** Variants with modified search options — the ablation configurations
    (no flat tiling, no dead-loop elimination, no slowdown factor, ...). *)
