open Mcf_ir

let tile_m = 128
let tile_n = 64
let max_head_dim = 128

(* The evaluated commit (57ee618, mid-2022) predates Ampere-specific
   pipelining (cp.async staging, warp specialization); its math pipes run
   well below the device peak on A100/RTX30. *)
let pre_ampere_penalty = 1.8

let is_attention (chain : Chain.t) =
  match chain.blocks with
  | [ b1; b2 ] -> (
    match (b1.epilogue, b2.epilogue) with
    | Chain.Softmax _, Chain.No_epilogue -> true
    | _ -> false)
  | _ -> false

let tune spec (chain : Chain.t) =
  if not (is_attention chain) then
    Error (Backend.Unsupported "FlashAttention only implements self-attention")
  else begin
    let k = Chain.axis chain "k" in
    let h = Chain.axis chain "h" in
    if k.size <> h.size then
      Error
        (Backend.Unsupported
           "FlashAttention requires K = H (rigid kernel constraint)")
    else if k.size > max_head_dim then
      Error (Backend.Unsupported "head dimension exceeds the handwritten menu")
    else begin
      let m = Chain.axis chain "m" in
      let n = Chain.axis chain "n" in
      let cand =
        Candidate.make
          (Tiling.Deep [ m; h; n; k ])
          [ ("m", min tile_m m.size);
            ("n", min tile_n n.size);
            ("k", k.size);
            ("h", h.size) ]
      in
      match Mcf_codegen.Compile.compile_candidate spec chain cand with
      | Error e ->
        Error (Backend.Unsupported (Mcf_codegen.Compile.string_of_error e))
      | Ok kernel -> (
        let kernel = Backend.derate_math pre_ampere_penalty kernel in
        match Mcf_gpu.Sim.run spec kernel with
        | Error e -> Error (Backend.Unsupported (Mcf_gpu.Sim.string_of_error e))
        | Ok v ->
          Ok
            { Backend.backend = "FlashAttention";
              kernels = [ kernel ];
              time_s = v.time_s;
              tuning_virtual_s = 0.0;
              tuning_wall_s = 0.0;
              fused = true;
              note = Some "handcrafted schedule, no tuning" })
    end
  end

let backend = { Backend.name = "FlashAttention"; tune }
