type tree =
  | Leaf of float
  | Split of { feat : int; threshold : float; left : tree; right : tree }

type params = {
  n_trees : int;
  max_depth : int;
  learning_rate : float;
  min_samples_split : int;
}

type t = {
  base : float;
  trees : tree list;
  learning_rate : float;
}

let default_params =
  { n_trees = 40; max_depth = 4; learning_rate = 0.3; min_samples_split = 4 }

let mean arr idxs =
  if Array.length idxs = 0 then 0.0
  else begin
    let s = Array.fold_left (fun acc i -> acc +. arr.(i)) 0.0 idxs in
    s /. float_of_int (Array.length idxs)
  end

(* Sum of squared errors around the subset mean, in one pass. *)
let sse targets idxs =
  let n = float_of_int (Array.length idxs) in
  if n = 0.0 then 0.0
  else begin
    let s = Array.fold_left (fun acc i -> acc +. targets.(i)) 0.0 idxs in
    let s2 =
      Array.fold_left (fun acc i -> acc +. (targets.(i) *. targets.(i))) 0.0 idxs
    in
    s2 -. (s *. s /. n)
  end

let best_split features targets idxs ~min_samples =
  let n_feats = Array.length features.(0) in
  let parent = sse targets idxs in
  let best = ref None in
  for f = 0 to n_feats - 1 do
    let sorted = Array.copy idxs in
    Array.sort (fun a b -> Float.compare features.(a).(f) features.(b).(f)) sorted;
    (* prefix sums over the sorted order *)
    let n = Array.length sorted in
    let prefix_s = Array.make (n + 1) 0.0 in
    let prefix_s2 = Array.make (n + 1) 0.0 in
    for i = 0 to n - 1 do
      let y = targets.(sorted.(i)) in
      prefix_s.(i + 1) <- prefix_s.(i) +. y;
      prefix_s2.(i + 1) <- prefix_s2.(i) +. (y *. y)
    done;
    for i = min_samples to n - min_samples do
      (* split between i-1 and i; skip ties *)
      if features.(sorted.(i - 1)).(f) < features.(sorted.(i)).(f) then begin
        let nl = float_of_int i and nr = float_of_int (n - i) in
        let sl = prefix_s.(i) and s2l = prefix_s2.(i) in
        let sr = prefix_s.(n) -. sl and s2r = prefix_s2.(n) -. s2l in
        let sse_l = s2l -. (sl *. sl /. nl) in
        let sse_r = s2r -. (sr *. sr /. nr) in
        let gain = parent -. sse_l -. sse_r in
        let better =
          match !best with None -> true | Some (g, _, _, _) -> gain > g
        in
        if gain > 1e-12 && better then begin
          let threshold =
            (features.(sorted.(i - 1)).(f) +. features.(sorted.(i)).(f)) /. 2.0
          in
          best := Some (gain, f, threshold, i)
        end
      end
    done
  done;
  match !best with
  | None -> None
  | Some (_, f, threshold, _) ->
    let left, right =
      Array.to_list idxs
      |> List.partition (fun i -> features.(i).(f) <= threshold)
    in
    Some (f, threshold, Array.of_list left, Array.of_list right)

let rec grow features targets idxs ~depth ~params =
  if depth >= params.max_depth
     || Array.length idxs < 2 * params.min_samples_split
  then Leaf (mean targets idxs)
  else
    match
      best_split features targets idxs ~min_samples:params.min_samples_split
    with
    | None -> Leaf (mean targets idxs)
    | Some (feat, threshold, li, ri) ->
      Split
        { feat;
          threshold;
          left = grow features targets li ~depth:(depth + 1) ~params;
          right = grow features targets ri ~depth:(depth + 1) ~params }

let rec eval_tree tree x =
  match tree with
  | Leaf v -> v
  | Split { feat; threshold; left; right } ->
    if x.(feat) <= threshold then eval_tree left x else eval_tree right x

let train ?(params = default_params) samples =
  if samples = [] then invalid_arg "Xgb.train: empty training set";
  let features = Array.of_list (List.map fst samples) in
  let arity = Array.length features.(0) in
  Array.iter
    (fun f ->
      if Array.length f <> arity then
        invalid_arg "Xgb.train: inconsistent feature arity")
    features;
  let targets = Array.of_list (List.map snd samples) in
  let n = Array.length targets in
  let base = mean targets (Array.init n (fun i -> i)) in
  let residuals = Array.map (fun y -> y -. base) targets in
  let all = Array.init n (fun i -> i) in
  let trees = ref [] in
  for _ = 1 to params.n_trees do
    let tree = grow features residuals ~depth:0 ~params (all) in
    Array.iteri
      (fun i _ ->
        residuals.(i) <-
          residuals.(i) -. (params.learning_rate *. eval_tree tree features.(i)))
      residuals;
    trees := tree :: !trees
  done;
  { base; trees = List.rev !trees; learning_rate = params.learning_rate }

let predict t x =
  List.fold_left
    (fun acc tree -> acc +. (t.learning_rate *. eval_tree tree x))
    t.base t.trees

let n_trees t = List.length t.trees

let log1 v = log (1.0 +. Float.abs v)

let feature_vector (l : Mcf_ir.Lower.t) =
  let cand = l.program.Mcf_ir.Program.cand in
  let tiles = List.map snd cand.Mcf_ir.Candidate.tiles in
  let tile_feats =
    match tiles with
    | [ a; b; c; d ] -> [ float_of_int a; float_of_int b; float_of_int c; float_of_int d ]
    | other ->
      (* pad/truncate to 4 slots for uniform arity *)
      let rec fit n = function
        | [] -> if n = 0 then [] else 0.0 :: fit (n - 1) []
        | x :: tl -> if n = 0 then [] else float_of_int x :: fit (n - 1) tl
      in
      fit 4 other
  in
  Array.of_list
    ([ log1 (Mcf_ir.Lower.total_traffic_bytes l);
       log1 (Mcf_ir.Lower.flops_per_block l *. float_of_int l.blocks);
       log1 (float_of_int l.blocks);
       log1 (float_of_int (Mcf_model.Shmem.estimate_bytes l));
       log1 (float_of_int l.stmt_trips_total);
       (if Mcf_ir.Tiling.is_flat cand.Mcf_ir.Candidate.tiling then 1.0 else 0.0);
       (if l.online_softmax then 1.0 else 0.0) ]
    @ List.map log1 tile_feats)
