(** A from-scratch gradient-boosted regression-tree model — the stand-in
    for the XGBoost cost model Ansor trains on measured programs (§II-B).

    Squared-error boosting with exact greedy splits; small by design (the
    training sets are at most the ~1000 measured trials of one tuning
    session).  The point reproduced here is the {e workflow} cost: the
    model must be retrained on freshly measured data every round, which is
    precisely the overhead MCFuser's analytical model removes. *)

type t

type params = {
  n_trees : int;
  max_depth : int;
  learning_rate : float;
  min_samples_split : int;
}

val default_params : params

val train : ?params:params -> (float array * float) list -> t
(** [train samples] fits on (features, target) pairs.
    @raise Invalid_argument on an empty training set or inconsistent
    feature arity. *)

val predict : t -> float array -> float

val n_trees : t -> int

val feature_vector : Mcf_ir.Lower.t -> float array
(** The schedule features Ansor-style models consume: log-scaled traffic,
    FLOPs, trip counts, block count, shared-memory footprint, tile
    extents, flags for flat tiling and online softmax. *)
