(** Common interface of the comparison systems (§VI-A).

    Every baseline maps an MBCI operator chain to a sequence of simulator
    kernels plus a tuning-cost account, so Fig. 8's normalized comparison
    and Table IV's tuning times come from one code path. *)

type outcome = {
  backend : string;
  kernels : Mcf_gpu.Kernel.t list;  (** Launched back-to-back. *)
  time_s : float;  (** Total simulated execution time. *)
  tuning_virtual_s : float;
  tuning_wall_s : float;
  fused : bool;  (** Did the system emit one fused kernel? *)
  note : string option;  (** e.g. "fallback: unfused cutlass ops". *)
}

type failure =
  | Unsupported of string
      (** The system cannot handle this chain/device at all (e.g. BOLT on
          sm86, FlashAttention on a non-attention chain). *)

type t = {
  name : string;
  tune : Mcf_gpu.Spec.t -> Mcf_ir.Chain.t -> (outcome, failure) result;
}

val run_kernels :
  ?dispatch_s:float ->
  Mcf_gpu.Spec.t ->
  Mcf_gpu.Kernel.t list ->
  (float, string) result
(** Simulate a launch sequence (measurement noise on), failing when any
    kernel cannot launch.  [dispatch_s] is the framework's per-operator
    dispatch cost on top of the raw kernel launch: eager PyTorch pays
    several microseconds of Python/dispatcher work per operator, compiled
    graph executors much less. *)

val eager_dispatch_s : float
(** Eager-framework per-operator overhead (PyTorch). *)

val graph_dispatch_s : float
(** Compiled graph-executor per-operator overhead (Relay/TVM/BOLT). *)

val derate_math : float -> Mcf_gpu.Kernel.t -> Mcf_gpu.Kernel.t
(** Scale the contraction FLOP cost of a kernel by a factor — used to
    model code generators that do not reach tensor-core peak (Ansor) or
    kernels predating the device generation (FlashAttention on Ampere).
    Epilogue compute entries (label suffix "!epi") are left alone. *)
