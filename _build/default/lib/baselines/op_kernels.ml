open Mcf_ir

let vendor_tile_table =
  [ (256, 128, 32);
    (128, 256, 32);
    (128, 128, 32);
    (128, 64, 32);
    (64, 128, 32);
    (64, 64, 64);
    (64, 64, 32);
    (32, 64, 32);
    (64, 32, 32);
    (32, 32, 32);
    (16, 16, 16) ]

let single_gemm_chain ~batch ~m ~n ~k =
  let am = Axis.spatial "m" m in
  let an = Axis.spatial "n" n in
  let ak = Axis.reduce "k" k in
  let ta = { Chain.tname = "A"; taxes = [ am; ak ]; storage = Chain.Input } in
  let tb = { Chain.tname = "B"; taxes = [ ak; an ]; storage = Chain.Input } in
  let tc = { Chain.tname = "C"; taxes = [ am; an ]; storage = Chain.Output } in
  { Chain.cname = Printf.sprintf "gemm_b%d_m%d_n%d_k%d" batch m n k;
    axes = [ am; an; ak ];
    batch;
    blocks =
      [ { Chain.bname = "C";
          out = tc;
          ins = [ ta; tb ];
          reduce_axes = [ ak ];
          epilogue = Chain.No_epilogue } ];
    tensors = [ ta; tb; tc ] }

let clamp_tile size t =
  if size <= 16 then size else min t (((size + 15) / 16) * 16 |> min size)

let gemm_candidate chain ~m ~n ~k (tm, tn, tk) =
  let am = Chain.axis chain "m" in
  let an = Chain.axis chain "n" in
  let ak = Chain.axis chain "k" in
  Candidate.make
    (Tiling.Deep [ am; an; ak ])
    [ ("m", clamp_tile m tm); ("n", clamp_tile n tn); ("k", clamp_tile k tk) ]

(* Split-K factors cuBLAS considers for reduction-heavy shapes: the K
   dimension is divided across [s] cooperating blocks (modeled as an
   s-times-larger batch of shallower GEMMs) followed by a partial-sum
   reduction pass over s copies of C. *)
let split_k_options ~k =
  List.filter (fun s -> s = 1 || k / s >= 64) [ 1; 2; 4; 8; 16; 32; 64 ]

let gemm_plain ?(quality = `Cublas) (spec : Mcf_gpu.Spec.t) ~batch ~m ~n ~k =
  let chain = single_gemm_chain ~batch ~m ~n ~k in
  let menu =
    match quality with
    | `Cublas -> vendor_tile_table
    | `Fixed cfg -> [ cfg ]
  in
  let candidates =
    List.filter_map
      (fun cfg ->
        match
          Mcf_codegen.Compile.compile_candidate spec chain
            (gemm_candidate chain ~m ~n ~k cfg)
        with
        | Ok kernel -> (
          match Mcf_gpu.Sim.run ~noise:false spec kernel with
          | Ok v -> Some (kernel, v.time_s)
          | Error _ -> None)
        | Error _ -> None)
      menu
  in
  match Mcf_util.Listx.min_by snd candidates with
  | Some (kernel, _) -> kernel
  | None ->
    (* The smallest configuration always launches; reaching here would be a
       bug in the menu. *)
    failwith "Op_kernels.gemm: no viable tile configuration"

(* A bandwidth-bound operator: blocks stream ~64 KiB each. *)
let memory_op (spec : Mcf_gpu.Spec.t) ~name ~read_elems ~write_elems
    ~flops_per_elem =
  let eb = float_of_int spec.elem_bytes in
  let read_bytes = read_elems *. eb in
  let write_bytes = write_elems *. eb in
  let total = read_bytes +. write_bytes in
  let blocks = max 1 (int_of_float (Float.ceil (total /. 65536.0))) in
  let fb = float_of_int blocks in
  { Mcf_gpu.Kernel.kname = name;
    blocks;
    smem_bytes = 4096;
    accesses =
      [ { Mcf_gpu.Kernel.label = name ^ ".in";
          bytes_per_block = read_bytes /. fb;
          unique_bytes = read_bytes;
          row_bytes = 128;
          direction = Mcf_gpu.Kernel.Load };
        { Mcf_gpu.Kernel.label = name ^ ".out";
          bytes_per_block = write_bytes /. fb;
          unique_bytes = write_bytes;
          row_bytes = 128;
          direction = Mcf_gpu.Kernel.Store } ];
    computes =
      [ { Mcf_gpu.Kernel.clabel = name;
          (* CUDA-core vector work, priced via the same 1/8-peak penalty
             the fused epilogues use. *)
          flops_per_block = 8.0 *. flops_per_elem *. write_elems /. fb;
          tile_m = 128;
          tile_n = 128;
          tile_k = 64 } ];
    stmt_trips_per_block = 8.0 }

let softmax_kernels ?(fused = true) spec ~rows ~cols =
  let elems = rows *. float_of_int cols in
  if fused then
    [ memory_op spec ~name:"softmax" ~read_elems:elems ~write_elems:elems
        ~flops_per_elem:6.0 ]
  else
    [ memory_op spec ~name:"softmax.scale" ~read_elems:elems ~write_elems:elems
        ~flops_per_elem:1.0;
      memory_op spec ~name:"softmax.exp" ~read_elems:elems ~write_elems:elems
        ~flops_per_elem:3.0;
      memory_op spec ~name:"softmax.norm"
        ~read_elems:(elems +. rows)
        ~write_elems:elems ~flops_per_elem:2.0 ]

(* Fold a split-K reduction pass into one kernel description: the partial
   GEMM grid plus the extra C traffic of combining s partial copies. *)
let with_split_reduction (spec : Mcf_gpu.Spec.t) base ~s ~batch ~m ~n =
  if s = 1 then base
  else begin
    let eb = float_of_int spec.elem_bytes in
    let c_bytes = float_of_int (batch * m * n) *. eb in
    let extra_blocks = max 1 (int_of_float (c_bytes /. 65536.0)) in
    let blocks = base.Mcf_gpu.Kernel.blocks + extra_blocks in
    let fb = float_of_int blocks in
    let scale_access (a : Mcf_gpu.Kernel.access) =
      { a with
        bytes_per_block =
          a.bytes_per_block *. float_of_int base.Mcf_gpu.Kernel.blocks /. fb }
    in
    let reduction =
      [ { Mcf_gpu.Kernel.label = "C.partials";
          bytes_per_block = float_of_int s *. c_bytes /. fb;
          unique_bytes = float_of_int s *. c_bytes;
          row_bytes = 128;
          direction = Mcf_gpu.Kernel.Load };
        { Mcf_gpu.Kernel.label = "C.final";
          bytes_per_block = c_bytes /. fb;
          unique_bytes = c_bytes;
          row_bytes = 128;
          direction = Mcf_gpu.Kernel.Store } ]
    in
    { base with
      Mcf_gpu.Kernel.kname = Printf.sprintf "%s+splitk%d" base.kname s;
      blocks;
      accesses = List.map scale_access base.accesses @ reduction }
  end

let gemm ?(quality = `Cublas) (spec : Mcf_gpu.Spec.t) ~batch ~m ~n ~k =
  let splits = match quality with `Cublas -> split_k_options ~k | `Fixed _ -> [ 1 ] in
  let candidates =
    List.filter_map
      (fun s ->
        let base = gemm_plain ~quality spec ~batch:(batch * s) ~m ~n ~k:(k / s) in
        let kernel = with_split_reduction spec base ~s ~batch ~m ~n in
        match Mcf_gpu.Sim.run ~noise:false spec kernel with
        | Ok v -> Some (kernel, v.time_s)
        | Error _ -> None)
      splits
  in
  match Mcf_util.Listx.min_by snd candidates with
  | Some (kernel, _) -> kernel
  | None -> gemm_plain ~quality spec ~batch ~m ~n ~k
