lib/workloads/configs.ml: List Mcf_ir
