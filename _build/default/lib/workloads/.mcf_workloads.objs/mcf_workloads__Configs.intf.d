lib/workloads/configs.mli: Mcf_ir
