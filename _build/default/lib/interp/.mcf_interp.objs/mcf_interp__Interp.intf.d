lib/interp/interp.mli: Mcf_ir Mcf_tensor
