lib/interp/interp.ml: Array Axis Candidate Chain Float Hashtbl List Mcf_ir Mcf_tensor Mcf_util Printf Program String
