type direction = Load | Store

type access = {
  label : string;
  bytes_per_block : float;
  unique_bytes : float;
  row_bytes : int;
  direction : direction;
}

type compute = {
  clabel : string;
  flops_per_block : float;
  tile_m : int;
  tile_n : int;
  tile_k : int;
}

type t = {
  kname : string;
  blocks : int;
  smem_bytes : int;
  accesses : access list;
  computes : compute list;
  stmt_trips_per_block : float;
}

let fingerprint k =
  let buf = Buffer.create 128 in
  Buffer.add_string buf k.kname;
  Buffer.add_string buf (Printf.sprintf "|g%d|s%d" k.blocks k.smem_bytes);
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "|%s%c%.0f/%.0f/%d" a.label
           (match a.direction with Load -> 'L' | Store -> 'S')
           a.bytes_per_block a.unique_bytes a.row_bytes))
    k.accesses;
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "|C%s%.0f/%d/%d/%d" c.clabel c.flops_per_block
           c.tile_m c.tile_n c.tile_k))
    k.computes;
  Buffer.contents buf

let total_flops k =
  let per_block =
    List.fold_left (fun acc c -> acc +. c.flops_per_block) 0.0 k.computes
  in
  per_block *. float_of_int k.blocks

let total_bytes k =
  let per_block =
    List.fold_left (fun acc a -> acc +. a.bytes_per_block) 0.0 k.accesses
  in
  per_block *. float_of_int k.blocks

let pp ppf k =
  Format.fprintf ppf "kernel %s: %d blocks, %d B smem, %.3g FLOPs, %.3g B"
    k.kname k.blocks k.smem_bytes (total_flops k) (total_bytes k)
