(** Analytic GPU kernel simulator — the stand-in for hardware measurement.

    The simulator prices a {!Kernel.t} on a {!Spec.t} with effects the
    paper's analytical model (eqs. 2-5) deliberately ignores: occupancy
    derived from shared-memory usage, wave quantization, DRAM coalescing
    efficiency, tensor-core efficiency as a function of MMA tile shape, L2
    reuse across thread blocks, imperfect compute/memory overlap,
    per-iteration instruction overhead, kernel launch latency and a small
    deterministic measurement noise.  Because it is strictly richer than the
    analytical model, the estimator-vs-measurement scatter of Figs. 10-11
    arises here for the same structural reasons as on hardware. *)

type bound_by = Memory | Compute | Overhead

type verdict = {
  time_s : float;  (** End-to-end kernel time including launch. *)
  mem_s : float;  (** DRAM time component (post-L2, post-coalescing). *)
  comp_s : float;  (** Math-pipe time component. *)
  overhead_s : float;  (** Launch + per-iteration instruction overhead. *)
  waves : int;  (** Number of scheduling waves. *)
  blocks_in_flight : int;  (** Concurrent thread blocks (occupancy x SMs). *)
  achieved_flops : float;  (** total FLOPs / time. *)
  bound : bound_by;  (** Dominant component. *)
}

type error =
  | Smem_overflow of { used : int; limit : int }
      (** The kernel requests more shared memory than a block may own: the
          real toolchain would refuse to launch it (the "eliminated during
          PTX code lowering" cases of §VI-E1). *)
  | Empty_grid

val run : ?noise:bool -> Spec.t -> Kernel.t -> (verdict, error) result
(** Simulate one kernel.  [noise] (default true) applies a +-3 % deterministic
    perturbation keyed on the kernel fingerprint, mimicking run-to-run
    variance of hardware measurement. *)

val time_exn : ?noise:bool -> Spec.t -> Kernel.t -> float
(** [run] unwrapped. @raise Failure on error. *)

val run_sequence : ?noise:bool -> Spec.t -> Kernel.t list -> (float, error) result
(** Total time of kernels launched back-to-back (each pays launch
    overhead) — how unfused baselines execute an operator chain. *)

val tensor_core_efficiency : m:int -> n:int -> k:int -> float
(** Fraction of peak math throughput attainable with the given MMA tile
    extents (exposed for tests and for the Fig. 2 experiment). *)

val coalesce_efficiency : row_bytes:int -> float
(** Fraction of peak DRAM bandwidth attainable with the given contiguous
    run length. *)

val string_of_error : error -> string

val explain : Spec.t -> Kernel.t -> string
(** Human-readable cost breakdown: verdict components, occupancy, waves,
    per-access effective DRAM traffic after L2/coalescing, achieved
    throughput vs device peak.  For failed launches, the failure. *)
