(** Virtual tuning clock.

    Table IV compares tuning times, which on hardware are dominated by how
    many candidates each tuner compiles and measures.  Tuners charge this
    clock for every compilation and every on-device measurement; the
    resulting virtual seconds reproduce the paper's accounting without a GPU
    (real OCaml wall-clock is reported alongside by the harness). *)

type t

val create : unit -> t

val reset : t -> unit

val elapsed_s : t -> float
(** Accumulated virtual seconds. *)

val charge : t -> float -> unit
(** Add raw seconds (e.g. framework start-up, template library scan). *)

val charge_compile : t -> toolchain_s:float -> unit
(** One candidate compiled: Triton JIT =~ 0.8 s, TVM+nvcc =~ 4.5 s,
    CUTLASS template instantiation =~ 1.7 s — the caller supplies its
    toolchain's figure. *)

val charge_measure : t -> kernel_time_s:float -> repeats:int -> unit
(** One on-device measurement: [repeats] timed runs plus fixed driver
    overhead per measurement session. *)

val with_wall_clock : (unit -> 'a) -> 'a * float
(** Run a thunk and also return real elapsed wall-clock seconds. *)
