(** Device-kernel descriptions consumed by the simulator.

    A kernel is what code generation produces from a lowered schedule: a
    grid of thread blocks, a shared-memory footprint, and per-block memory
    traffic and compute totals.  Baselines and fused schedules all lower to
    this one representation so the simulator compares them fairly. *)

type direction = Load | Store

type access = {
  label : string;  (** Tensor being moved, for reports. *)
  bytes_per_block : float;
      (** Global-memory traffic issued by one thread block over the kernel's
          lifetime (tile bytes x trip count). *)
  unique_bytes : float;
      (** Footprint of the underlying tensor region touched by the whole
          grid; re-reads beyond this may hit in L2. *)
  row_bytes : int;
      (** Contiguous bytes per row of the transferred tile; determines
          coalescing efficiency. *)
  direction : direction;
}

type compute = {
  clabel : string;
  flops_per_block : float;  (** FLOPs executed by one thread block. *)
  tile_m : int;
  tile_n : int;
  tile_k : int;
      (** Innermost MMA tile extents; determine tensor-core efficiency. *)
}

type t = {
  kname : string;
  blocks : int;  (** Grid size in thread blocks. *)
  smem_bytes : int;  (** Actual shared memory requested per block. *)
  accesses : access list;
  computes : compute list;
  stmt_trips_per_block : float;
      (** Total statement executions per block (loop iterations across all
          statements); models per-iteration instruction/synchronization
          overhead that punishes trivially small tiles. *)
}

val fingerprint : t -> string
(** Stable textual identity used to seed deterministic measurement noise. *)

val total_flops : t -> float
(** FLOPs across the whole grid. *)

val total_bytes : t -> float
(** Global-memory traffic across the whole grid (ignoring L2 reuse). *)

val pp : Format.formatter -> t -> unit
