type t = { mutable seconds : float }

let create () = { seconds = 0.0 }
let reset t = t.seconds <- 0.0
let elapsed_s t = t.seconds
let charge t s = t.seconds <- t.seconds +. Float.max 0.0 s

let charge_compile t ~toolchain_s = charge t toolchain_s

(* Each measurement session pays ~2 ms of driver/synchronization overhead
   on top of the timed repeats. *)
let measure_session_overhead_s = 2.0e-3

let charge_measure t ~kernel_time_s ~repeats =
  charge t (measure_session_overhead_s +. (float_of_int repeats *. kernel_time_s))

let with_wall_clock f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)
