lib/gpu/clock.mli:
