lib/gpu/spec.mli: Format
