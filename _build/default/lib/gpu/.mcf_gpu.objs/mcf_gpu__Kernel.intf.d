lib/gpu/kernel.mli: Format
