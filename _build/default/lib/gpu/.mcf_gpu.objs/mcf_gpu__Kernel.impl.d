lib/gpu/kernel.ml: Buffer Format List Printf
