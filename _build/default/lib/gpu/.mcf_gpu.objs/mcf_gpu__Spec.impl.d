lib/gpu/spec.ml: Format List String
