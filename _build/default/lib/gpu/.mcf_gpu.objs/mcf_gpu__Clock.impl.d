lib/gpu/clock.ml: Float Unix
