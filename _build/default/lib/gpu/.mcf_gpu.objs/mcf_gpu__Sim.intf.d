lib/gpu/sim.mli: Kernel Spec
