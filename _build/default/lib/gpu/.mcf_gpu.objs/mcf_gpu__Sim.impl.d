lib/gpu/sim.ml: Buffer Float Kernel List Mcf_util Printf Spec
