lib/search/schedule_cache.ml: Axis Candidate Chain Fun List Mcf_gpu Mcf_ir Printf Result String Sys Tiling Tuner
