lib/search/tuner.mli: Explore Mcf_gpu Mcf_ir Space
