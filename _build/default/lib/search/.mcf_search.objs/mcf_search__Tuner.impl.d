lib/search/tuner.ml: Explore Int64 Logs Mcf_codegen Mcf_gpu Mcf_ir Mcf_util Result Space
