lib/search/schedule_cache.mli: Mcf_gpu Mcf_ir Tuner
