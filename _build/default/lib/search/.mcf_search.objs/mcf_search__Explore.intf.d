lib/search/explore.mli: Logs Mcf_gpu Mcf_util Space
