lib/search/space.ml: Axis Candidate Chain List Lower Mcf_gpu Mcf_ir Mcf_model Mcf_util Result Tiling
