lib/search/explore.ml: Array Float Hashtbl List Logs Mcf_codegen Mcf_gpu Mcf_ir Mcf_model Mcf_util Option Printf Space
