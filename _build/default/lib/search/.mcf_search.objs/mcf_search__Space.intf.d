lib/search/space.mli: Mcf_gpu Mcf_ir
