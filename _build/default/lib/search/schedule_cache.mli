(** Persistent schedule cache.

    Deployment flows tune once and reuse: the cache stores the best
    candidate found for (device, chain) pairs in a small line-oriented text
    file, so later runs skip tuning entirely (the "efficient deployment"
    concern of the paper's introduction).

    Format, one record per line:
    [chain_name|device|tiling|tiles|kernel_time_s] with [tiling] in a
    parse-friendly spelling ([deep:m,h,n,k] or [flat:m,n/k/h]) and [tiles]
    as [name=value] pairs.  Unknown or corrupt lines are skipped on load. *)

type entry = {
  echain : string;  (** Chain name. *)
  edevice : string;
  ecand : Mcf_ir.Candidate.t;
  etime_s : float;
}

type t

val empty : t

val add : t -> entry -> t
(** Replaces an existing record for the same (chain, device). *)

val lookup : t -> chain:Mcf_ir.Chain.t -> device:string -> entry option
(** The candidate is re-bound to [chain]'s axes; [None] when the cached
    tiling references axes the chain does not have. *)

val size : t -> int

val serialize_candidate : Mcf_ir.Candidate.t -> string

val parse_candidate :
  Mcf_ir.Chain.t -> string -> (Mcf_ir.Candidate.t, string) result

val save : t -> string -> unit
(** Write to a file (atomically via a temp file + rename). *)

val load : chains:Mcf_ir.Chain.t list -> string -> t
(** Read a cache file; records for unknown chains or with unparsable
    candidates are dropped.  A missing file yields {!empty}. *)

val tune_with_cache :
  cache_file:string ->
  Mcf_gpu.Spec.t ->
  Mcf_ir.Chain.t ->
  (Tuner.outcome option * entry, Tuner.error) result
(** Look the chain up; on a miss, run {!Tuner.tune}, append the result to
    the file and return the fresh outcome alongside the cache entry (the
    outcome is [None] on a cache hit). *)
