(** Process-wide memoization of backend runs, so Fig. 8, Table IV and the
    ablations share tuning work when several experiments run in one
    process.  Keys combine backend name, device and chain identity. *)

val run :
  Mcf_baselines.Backend.t ->
  Mcf_gpu.Spec.t ->
  Mcf_ir.Chain.t ->
  (Mcf_baselines.Backend.outcome, Mcf_baselines.Backend.failure) result

val clear : unit -> unit
