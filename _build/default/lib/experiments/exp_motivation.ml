type row = {
  seq : int;
  flops_share : float;
  time_share : float;
  attention_intensity : float;
}

let title =
  "Motivation (SII-A): self-attention's share of FLOPs vs execution time"

let sequence_lengths = [ 512; 1024; 2048 ]

let compute (spec : Mcf_gpu.Spec.t) (cfg : Mcf_workloads.Configs.bert_config) =
  List.map
    (fun seq ->
      let graph = Mcf_frontend.Graph.bert { cfg with seq } in
      let attn_cfg =
        List.hd (Mcf_frontend.Graph.attention_configs graph)
      in
      let chain = Mcf_workloads.Configs.attention attn_cfg in
      { seq;
        flops_share =
          Mcf_frontend.Engine.attention_fraction spec graph
            ~flops_fraction:true;
        time_share =
          Mcf_frontend.Engine.attention_fraction spec graph
            ~flops_fraction:false;
        attention_intensity =
          Mcf_ir.Chain.total_flops chain
          /. Mcf_ir.Chain.unfused_traffic_bytes chain
               ~elem_bytes:spec.elem_bytes })
    sequence_lengths

let render spec =
  let cfg = Mcf_workloads.Configs.bert_large in
  let rows = compute spec cfg in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s\n%s, eager execution on %s\n\n" title
       cfg.Mcf_workloads.Configs.bname spec.Mcf_gpu.Spec.name);
  let tbl =
    Mcf_util.Table.create
      ~headers:
        [ "seq"; "attn FLOPs share"; "attn time share";
          "attn intensity (FLOPs/B)"; "roofline"; "paper (FLOPs/time)" ]
  in
  let paper = [ (512, "11% / 39%"); (1024, "14% / 51%"); (2048, "19% / 61%") ] in
  List.iter
    (fun r ->
      Mcf_util.Table.add_row tbl
        [ string_of_int r.seq;
          Printf.sprintf "%.0f%%" (100.0 *. r.flops_share);
          Printf.sprintf "%.0f%%" (100.0 *. r.time_share);
          Mcf_util.Table.fmt_float ~digits:0 r.attention_intensity;
          Mcf_util.Table.fmt_float ~digits:0 (Mcf_gpu.Spec.roofline_ratio spec);
          List.assoc r.seq paper ])
    rows;
  Buffer.add_string buf (Mcf_util.Table.render tbl);
  Buffer.add_string buf
    "shape check: the attention share of time grows with sequence length and \
     always dwarfs its FLOPs share, because the sub-graph's arithmetic \
     intensity sits far below the device roofline — the MBCI gap MCFuser \
     closes\n";
  Buffer.contents buf
