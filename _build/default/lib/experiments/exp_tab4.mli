(** Table IV — tuning times, on the virtual clock (compile + device
    measurement accounting; see DESIGN.md) with OCaml wall-clock shown
    alongside.

    Sub-graph part: average over the Table II GEMM chains and Table III
    attention modules on the A100 for BOLT, Ansor, MCFuser-Chimera and
    MCFuser, with the paper's headline speedups (2.5x vs BOLT, 139x/74x
    vs Ansor).  End-to-end part: the five engines on BERT. *)

val render : Mcf_gpu.Spec.t -> string

val title : string
