let title = "Table IV: tuning times (virtual clock; wall-clock in parens)"

let subgraph_part buf spec =
  let backends =
    [ Mcf_baselines.Bolt.backend;
      Mcf_baselines.Ansor.backend;
      Mcf_baselines.Chimera.backend;
      Mcf_baselines.Mcfuser_backend.backend ]
  in
  let avg_times chains =
    List.map
      (fun (b : Mcf_baselines.Backend.t) ->
        let samples =
          List.filter_map
            (fun chain ->
              match Evalcache.run b spec chain with
              | Ok o ->
                Some (o.Mcf_baselines.Backend.tuning_virtual_s,
                      o.Mcf_baselines.Backend.tuning_wall_s)
              | Error _ -> None)
            chains
        in
        match samples with
        | [] -> (b.name, None)
        | _ ->
          ( b.name,
            Some
              ( Mcf_util.Stats.mean (List.map fst samples),
                Mcf_util.Stats.mean (List.map snd samples) ) ))
      backends
  in
  let gemms =
    List.map Mcf_workloads.Configs.gemm_chain Mcf_workloads.Configs.gemm_chains
  in
  let attns =
    List.map Mcf_workloads.Configs.attention Mcf_workloads.Configs.attentions
  in
  let tbl =
    Mcf_util.Table.create
      ~headers:
        [ "sub-graph"; "BOLT"; "Ansor"; "MCFuser-Chimera"; "MCFuser";
          "speedup vs BOLT/Ansor" ]
  in
  let row label chains paper =
    let times = avg_times chains in
    let fmt = function
      | Some (v, w) ->
        Printf.sprintf "%s (%.2fs)" (Mcf_util.Table.fmt_time_s v) w
      | None -> "-"
    in
    let get name =
      match List.assoc name times with Some (v, _) -> Some v | None -> None
    in
    let speedups =
      match (get "MCFuser", get "BOLT", get "Ansor") with
      | Some m, bolt, Some ansor ->
        let vs_bolt =
          match bolt with
          | Some b -> Printf.sprintf "%.1fx" (b /. m)
          | None -> "-"
        in
        Printf.sprintf "%s / %.0fx %s" vs_bolt (ansor /. m) paper
      | _ -> "-"
    in
    Mcf_util.Table.add_row tbl
      (label
      :: List.map (fun name -> fmt (List.assoc name times))
           [ "BOLT"; "Ansor"; "MCFuser-Chimera"; "MCFuser" ]
      @ [ speedups ])
  in
  row "GEMM chains (avg)" gemms "(paper: 2.5x / 139x)";
  row "self-attention (avg)" attns "(paper: - / 74x)";
  Buffer.add_string buf (Mcf_util.Table.render tbl)

let e2e_part buf spec =
  let open Mcf_frontend in
  let tbl =
    Mcf_util.Table.create
      ~headers:
        [ "model"; "Relay"; "BOLT"; "MCFuser+Relay"; "Ansor"; "MCFuser+Ansor" ]
  in
  List.iter
    (fun cfg ->
      let graph = Graph.bert cfg in
      let t kind = (Engine.run kind spec graph).Engine.tuning_virtual_s in
      let relay = t Engine.Relay_engine in
      let bolt = t Engine.Bolt_engine in
      let mrelay = t (Engine.Mcfuser_with Engine.Relay_engine) in
      let ansor = t Engine.Ansor_engine in
      let mansor = t (Engine.Mcfuser_with Engine.Ansor_engine) in
      Mcf_util.Table.add_row tbl
        [ cfg.Mcf_workloads.Configs.bname;
          Mcf_util.Table.fmt_time_s relay;
          Mcf_util.Table.fmt_time_s bolt;
          Printf.sprintf "%s (%.2fx vs BOLT)"
            (Mcf_util.Table.fmt_time_s mrelay)
            (bolt /. mrelay);
          Mcf_util.Table.fmt_time_s ansor;
          Printf.sprintf "%s (%.2fx vs Ansor)"
            (Mcf_util.Table.fmt_time_s mansor)
            (ansor /. mansor) ])
    Mcf_workloads.Configs.berts;
  Buffer.add_string buf (Mcf_util.Table.render tbl);
  Buffer.add_string buf
    "paper end-to-end: MCFuser+Relay 1.12-1.57x faster to tune than BOLT; \
     MCFuser+Ansor 1.36-1.45x faster than Ansor\n"

let render spec =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (title ^ "\n\nSub-graph modules:\n");
  subgraph_part buf spec;
  Buffer.add_string buf "\nEnd-to-end models:\n";
  e2e_part buf spec;
  Buffer.contents buf
