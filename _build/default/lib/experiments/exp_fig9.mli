(** Fig. 9 — end-to-end BERT evaluation on the A100.

    The five engines (Relay, BOLT, Ansor, MCFuser+Relay, MCFuser+Ansor)
    on BERT-Small/Base/Large at sequence length 512, reporting forward
    latency normalized to Relay plus the §II-A motivation numbers
    (attention's share of FLOPs vs time). *)

val engines : Mcf_frontend.Engine.kind list

val compute :
  Mcf_gpu.Spec.t ->
  (Mcf_workloads.Configs.bert_config * Mcf_frontend.Engine.report list) list

val render : Mcf_gpu.Spec.t -> string

val title : string
