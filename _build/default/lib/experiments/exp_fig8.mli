(** Fig. 8 — sub-graph performance normalized to PyTorch.

    Four panels: (a) GEMM chains on A100, (b) GEMM chains on RTX 3080,
    (c) self-attention on A100, (d) self-attention on RTX 3080.  For each
    workload every system is tuned (through {!Evalcache}) and the speedup
    over eager PyTorch reported; the summary lines reproduce the paper's
    headline averages (MCFuser vs PyTorch / Ansor / MCFuser-Chimera /
    BOLT / FlashAttention). *)

type panel = Gemm_chains | Attention

type row = {
  workload : string;
  times : (string * float option) list;  (** backend -> seconds (None = unsupported). *)
}

type result = {
  spec : Mcf_gpu.Spec.t;
  panel : panel;
  backends : string list;
  rows : row list;
}

val backends_for : panel -> Mcf_baselines.Backend.t list

val compute : Mcf_gpu.Spec.t -> panel -> result

val render_result : result -> string

val render : Mcf_gpu.Spec.t -> panel -> string

val title : string

val geomean_speedup : result -> over:string -> of_:string -> float option
(** Geometric-mean speedup of one backend over another across the rows
    where both ran. *)
