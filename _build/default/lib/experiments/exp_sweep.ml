type row = {
  seq : int;
  pytorch_s : float;
  mcfuser_s : float;
  speedup : float;
  intensity : float;
  best : string;
}

let title = "Sweep (extension): attention fusion benefit vs sequence length"

let sequence_lengths = [ 128; 256; 512; 1024; 2048 ]

let compute (spec : Mcf_gpu.Spec.t) =
  List.filter_map
    (fun seq ->
      let chain = Mcf_ir.Chain.attention ~heads:12 ~m:seq ~n:seq ~k:64 ~h:64 () in
      let pytorch =
        match Evalcache.run Mcf_baselines.Pytorch.backend spec chain with
        | Ok o -> Some o.time_s
        | Error _ -> None
      in
      let mcfuser =
        match Evalcache.run Mcf_baselines.Mcfuser_backend.backend spec chain with
        | Ok o -> Some o
        | Error _ -> None
      in
      match (pytorch, mcfuser) with
      | Some p, Some m ->
        Some
          { seq;
            pytorch_s = p;
            mcfuser_s = m.time_s;
            speedup = p /. m.time_s;
            intensity =
              Mcf_ir.Chain.total_flops chain
              /. Mcf_ir.Chain.unfused_traffic_bytes chain
                   ~elem_bytes:spec.elem_bytes;
            best = (List.hd m.kernels).Mcf_gpu.Kernel.kname }
      | _ -> None)
    sequence_lengths

let render spec =
  let rows = compute spec in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s\n12 heads, head dim 64, on %s\n\n" title
       spec.Mcf_gpu.Spec.name);
  let tbl =
    Mcf_util.Table.create
      ~headers:
        [ "seq"; "PyTorch"; "MCFuser"; "speedup"; "intensity (FLOPs/B)" ]
  in
  List.iter
    (fun r ->
      Mcf_util.Table.add_row tbl
        [ string_of_int r.seq;
          Mcf_util.Table.fmt_time_s r.pytorch_s;
          Mcf_util.Table.fmt_time_s r.mcfuser_s;
          Mcf_util.Table.fmt_float r.speedup ^ "x";
          Mcf_util.Table.fmt_float ~digits:0 r.intensity ])
    rows;
  Buffer.add_string buf (Mcf_util.Table.render tbl);
  Buffer.add_string buf
    (Mcf_util.Chart.line ~title:"fused speedup vs sequence length"
       ~x_label:"log2(seq)"
       [ ( "speedup",
           List.map
             (fun r -> (log (float_of_int r.seq) /. log 2.0, r.speedup))
             rows ) ]);
  Buffer.add_string buf
    "shape check: the chain stays memory-bound at every length (intensity \
     far below the roofline) and fusion wins ~8-13x throughout — launch \
     overhead dominates the short end, score-matrix traffic the long end\n";
  Buffer.contents buf
