let title =
  "Fig. 7: search-space pruning on the GEMM chain example (M=N=1024, K=H=512)"

let example_chain () = Mcf_ir.Chain.gemm_chain ~m:1024 ~n:1024 ~k:512 ~h:512 ()

let compute spec =
  snd (Mcf_search.Space.enumerate spec (example_chain ()))

let render spec =
  let f = compute spec in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (title ^ "\n\n");
  let tbl = Mcf_util.Table.create ~headers:[ "stage"; "count"; "paper" ] in
  Mcf_util.Table.add_row tbl
    [ "tiling expressions (raw)"; string_of_int f.tilings_raw; "26" ];
  Mcf_util.Table.add_row tbl
    [ "after Rule 1 (dedup)"; string_of_int f.tilings_rule1; "5" ];
  Mcf_util.Table.add_row tbl
    [ "after Rule 2 (residency)"; string_of_int f.tilings_rule2; "3" ];
  Mcf_util.Table.add_rule tbl;
  Mcf_util.Table.add_row tbl
    [ "candidates (raw)"; Mcf_util.Table.fmt_sci f.candidates_raw; "1.09e8" ];
  Mcf_util.Table.add_row tbl
    [ "after Rule 3 (padding)";
      Mcf_util.Table.fmt_sci f.candidates_rule3;
      "~1e6 -> 99% dropped" ];
  Mcf_util.Table.add_row tbl
    [ "after Rule 4 (shared memory)";
      string_of_int f.candidates_rule4;
      "~40% of remaining dropped" ];
  Mcf_util.Table.add_row tbl
    [ "valid (softmax legality)"; string_of_int f.candidates_valid; "~1e4" ];
  Buffer.add_string buf (Mcf_util.Table.render tbl);
  Buffer.add_string buf
    (Mcf_util.Chart.bar ~title:"candidates remaining (log10)"
       ~unit_label:"log10(count)"
       [ ("raw", Float.log10 f.candidates_raw);
         ("rule 3", Float.log10 f.candidates_rule3);
         ("rule 4", Float.log10 (float_of_int (max 1 f.candidates_rule4)));
         ("valid", Float.log10 (float_of_int (max 1 f.candidates_valid))) ]);
  Buffer.add_string buf
    (Printf.sprintf
       "shape check: %.1e raw candidates reduced to %d explorable ones \
        (paper: 1.09e8 -> ~1e4; same orders of magnitude)\n"
       f.candidates_raw f.candidates_valid);
  Buffer.contents buf
