type panel = Gemm_chains | Attention

type row = {
  workload : string;
  times : (string * float option) list;
}

type result = {
  spec : Mcf_gpu.Spec.t;
  panel : panel;
  backends : string list;
  rows : row list;
}

let title = "Fig. 8: sub-graph performance normalized to PyTorch"

let backends_for = function
  | Gemm_chains ->
    [ Mcf_baselines.Pytorch.backend;
      Mcf_baselines.Ansor.backend;
      Mcf_baselines.Bolt.backend;
      Mcf_baselines.Chimera.backend;
      Mcf_baselines.Mcfuser_backend.backend ]
  | Attention ->
    [ Mcf_baselines.Pytorch.backend;
      Mcf_baselines.Ansor.backend;
      Mcf_baselines.Bolt.backend;
      Mcf_baselines.Flash_attention.backend;
      Mcf_baselines.Chimera.backend;
      Mcf_baselines.Mcfuser_backend.backend ]

let workloads = function
  | Gemm_chains ->
    List.map
      (fun g -> (g.Mcf_workloads.Configs.gname, Mcf_workloads.Configs.gemm_chain g))
      Mcf_workloads.Configs.gemm_chains
  | Attention ->
    List.map
      (fun s -> (s.Mcf_workloads.Configs.sname, Mcf_workloads.Configs.attention s))
      Mcf_workloads.Configs.attentions

let compute spec panel =
  let backends = backends_for panel in
  let rows =
    List.map
      (fun (wname, chain) ->
        let times =
          List.map
            (fun (b : Mcf_baselines.Backend.t) ->
              match Evalcache.run b spec chain with
              | Ok o -> (b.name, Some o.time_s)
              | Error (Mcf_baselines.Backend.Unsupported _) -> (b.name, None))
            backends
        in
        { workload = wname; times })
      (workloads panel)
  in
  { spec;
    panel;
    backends = List.map (fun (b : Mcf_baselines.Backend.t) -> b.name) backends;
    rows }

let time_of row name =
  match List.assoc_opt name row.times with Some t -> t | None -> None

let geomean_speedup result ~over ~of_ =
  let ratios =
    List.filter_map
      (fun row ->
        match (time_of row over, time_of row of_) with
        | Some slow, Some fast when fast > 0.0 -> Some (slow /. fast)
        | _ -> None)
      result.rows
  in
  match ratios with [] -> None | _ -> Some (Mcf_util.Stats.geomean ratios)

let panel_name = function
  | Gemm_chains -> "batch GEMM chains"
  | Attention -> "self-attention modules"

let render_result result =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "%s — %s on %s\n\n" title (panel_name result.panel)
       result.spec.Mcf_gpu.Spec.name);
  let headers =
    "workload"
    :: List.concat_map
         (fun b -> [ b ^ " (us)"; "x vs PyTorch" ])
         result.backends
  in
  let tbl = Mcf_util.Table.create ~headers in
  List.iter
    (fun row ->
      let pytorch = time_of row "PyTorch" in
      let cells =
        List.concat_map
          (fun b ->
            match (time_of row b, pytorch) with
            | Some t, Some p ->
              [ Mcf_util.Table.fmt_float ~digits:1 (t *. 1e6);
                Mcf_util.Table.fmt_float (p /. t) ]
            | Some t, None ->
              [ Mcf_util.Table.fmt_float ~digits:1 (t *. 1e6); "-" ]
            | None, _ -> [ "-"; "-" ])
          result.backends
      in
      Mcf_util.Table.add_row tbl (row.workload :: cells))
    result.rows;
  Buffer.add_string buf (Mcf_util.Table.render tbl);
  (* grouped bar chart of the speedups *)
  let chart_rows =
    List.map
      (fun row ->
        let pytorch = time_of row "PyTorch" in
        ( row.workload,
          List.map
            (fun b ->
              match (time_of row b, pytorch) with
              | Some t, Some p -> p /. t
              | _ -> 0.0)
            result.backends ))
      result.rows
  in
  Buffer.add_string buf
    (Mcf_util.Chart.grouped_bar ~title:"speedup over PyTorch" ~unit_label:"x"
       ~series:result.backends chart_rows);
  (* headline averages *)
  let headline slow fast paper =
    match geomean_speedup result ~over:slow ~of_:fast with
    | Some s ->
      Buffer.add_string buf
        (Printf.sprintf "  geomean %s vs %s: %.2fx   (paper: %s)\n" fast slow s
           paper)
    | None ->
      Buffer.add_string buf
        (Printf.sprintf "  geomean %s vs %s: n/a      (paper: %s)\n" fast slow
           paper)
  in
  Buffer.add_string buf "summary (geometric means over supported workloads):\n";
  let is_a100 = result.spec.Mcf_gpu.Spec.name = "A100" in
  (match result.panel with
  | Gemm_chains ->
    headline "PyTorch" "MCFuser" (if is_a100 then "6.6x" else "3.7x");
    headline "Ansor" "MCFuser" (if is_a100 then "2.7x" else "1.6x");
    headline "MCFuser-Chimera" "MCFuser" (if is_a100 then "1.06x" else "1.07x");
    headline "BOLT" "MCFuser" (if is_a100 then "7.1x" else "- (sm86)")
  | Attention ->
    headline "PyTorch" "MCFuser" (if is_a100 then "8.1x" else "5.8x");
    headline "Ansor" "MCFuser" (if is_a100 then "2.8x" else "1.45x");
    headline "FlashAttention" "MCFuser" (if is_a100 then "3.0x" else "3.3x");
    headline "MCFuser-Chimera" "MCFuser" (if is_a100 then "1.1x" else "1.01x"));
  Buffer.contents buf

let render spec panel = render_result (compute spec panel)
