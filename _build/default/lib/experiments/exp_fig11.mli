(** Fig. 11 — analytical-model accuracy (§VI-E2).

    For G1-G4, sampled candidates are both estimated (eqs. 2-5) and
    measured (simulator); the paper reports Pearson correlations of 0.86,
    0.92, 0.84 and 0.80 — good enough that measuring the model's top-8
    per generation finds the optimum. *)

type workload_result = {
  wname : string;
  n_points : int;
  pearson : float;
  spearman : float;
  points : (float * float) list;  (** (estimated, measured), microseconds. *)
}

val compute : ?samples:int -> Mcf_gpu.Spec.t -> workload_result list

val render : Mcf_gpu.Spec.t -> string

val title : string
