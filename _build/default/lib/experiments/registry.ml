type experiment = {
  id : string;
  description : string;
  run : unit -> string;
}

let a100 = Mcf_gpu.Spec.a100
let rtx3080 = Mcf_gpu.Spec.rtx3080

let all =
  [ { id = "motivation";
      description = "SII-A: attention's FLOPs share vs time share across sequence lengths";
      run = (fun () -> Exp_motivation.render a100) };
    { id = "fig2";
      description = "MatMul K/M sweep: the memory-bound transition";
      run = (fun () -> Exp_fig2.render a100) };
    { id = "fig7";
      description = "search-space pruning funnel (running example)";
      run = (fun () -> Exp_fig7.render a100) };
    { id = "fig8a";
      description = "GEMM-chain sub-graphs on A100, normalized to PyTorch";
      run = (fun () -> Exp_fig8.render a100 Exp_fig8.Gemm_chains) };
    { id = "fig8b";
      description = "GEMM-chain sub-graphs on RTX 3080";
      run = (fun () -> Exp_fig8.render rtx3080 Exp_fig8.Gemm_chains) };
    { id = "fig8c";
      description = "self-attention sub-graphs on A100";
      run = (fun () -> Exp_fig8.render a100 Exp_fig8.Attention) };
    { id = "fig8d";
      description = "self-attention sub-graphs on RTX 3080";
      run = (fun () -> Exp_fig8.render rtx3080 Exp_fig8.Attention) };
    { id = "fig9";
      description = "end-to-end BERT on A100";
      run = (fun () -> Exp_fig9.render a100) };
    { id = "tab4";
      description = "tuning times, sub-graph and end-to-end";
      run = (fun () -> Exp_tab4.render a100) };
    { id = "fig10";
      description = "shared-memory estimate vs actual allocation";
      run = (fun () -> Exp_fig10.render a100) };
    { id = "fig11";
      description = "analytical model vs measured performance (G1-G4)";
      run = (fun () -> Exp_fig11.render a100) };
    { id = "ablation";
      description = "MCFuser design choices switched off in isolation";
      run = (fun () -> Exp_ablation.render a100) };
    { id = "sweep";
      description = "extension: attention fusion benefit across sequence lengths";
      run = (fun () -> Exp_sweep.render a100) };
    { id = "verify";
      description = "correctness sweep: tuned schedules vs reference operators";
      run = (fun () -> Exp_verify.render a100) };
    { id = "extension";
      description = "extension workloads: convolution and MLP chains";
      run = (fun () -> Exp_extension.render a100) } ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids () = List.map (fun e -> e.id) all
