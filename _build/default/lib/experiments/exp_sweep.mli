(** Extension experiment — fusion benefit across sequence lengths.

    The paper evaluates fixed shapes; this sweep varies the sequence
    length for BERT-style attention.  The chain is memory-bound at every
    length (intensity stays far below the roofline), so fusion wins
    throughout — at short sequences mostly by eliminating the kernel zoo's
    launch/dispatch overhead, at long sequences by eliminating the
    quadratically-growing score-matrix traffic. *)

type row = {
  seq : int;
  pytorch_s : float;
  mcfuser_s : float;
  speedup : float;
  intensity : float;  (** Unfused FLOPs/byte. *)
  best : string;  (** Winning schedule. *)
}

val compute : Mcf_gpu.Spec.t -> row list

val render : Mcf_gpu.Spec.t -> string

val title : string
