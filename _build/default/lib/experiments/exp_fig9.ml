open Mcf_frontend

let title = "Fig. 9: end-to-end BERT evaluation (seq 512)"

let engines =
  [ Engine.Relay_engine;
    Engine.Bolt_engine;
    Engine.Ansor_engine;
    Engine.Mcfuser_with Engine.Relay_engine;
    Engine.Mcfuser_with Engine.Ansor_engine ]

let compute spec =
  List.map
    (fun cfg ->
      let graph = Graph.bert cfg in
      (cfg, List.map (fun k -> Engine.run k spec graph) engines))
    Mcf_workloads.Configs.berts

let render spec =
  let results = compute spec in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "%s on %s\n\n" title spec.Mcf_gpu.Spec.name);
  (* motivation numbers first (§II-A) *)
  List.iter
    (fun (cfg, _) ->
      let g = Graph.bert cfg in
      Buffer.add_string buf
        (Printf.sprintf
           "  %s: self-attention is %.0f%% of FLOPs but %.0f%% of eager time\n"
           cfg.Mcf_workloads.Configs.bname
           (100.0 *. Engine.attention_fraction spec g ~flops_fraction:true)
           (100.0 *. Engine.attention_fraction spec g ~flops_fraction:false)))
    results;
  Buffer.add_char buf '\n';
  let tbl =
    Mcf_util.Table.create
      ~headers:
        [ "model"; "engine"; "latency"; "x vs Relay"; "attention share";
          "kernels" ]
  in
  let chart_rows = ref [] in
  List.iter
    (fun ((cfg : Mcf_workloads.Configs.bert_config), reports) ->
      let relay =
        List.find (fun (r : Engine.report) -> r.engine = "Relay") reports
      in
      List.iter
        (fun (r : Engine.report) ->
          Mcf_util.Table.add_row tbl
            [ cfg.bname;
              r.engine;
              Mcf_util.Table.fmt_time_s r.latency_s;
              Mcf_util.Table.fmt_float (relay.latency_s /. r.latency_s);
              Printf.sprintf "%.0f%%" (100.0 *. r.attention_s /. r.latency_s);
              string_of_int r.kernel_launches ])
        reports;
      Mcf_util.Table.add_rule tbl;
      chart_rows :=
        ( cfg.bname,
          List.map
            (fun (r : Engine.report) -> relay.latency_s /. r.latency_s)
            reports )
        :: !chart_rows)
    results;
  Buffer.add_string buf (Mcf_util.Table.render tbl);
  Buffer.add_string buf
    (Mcf_util.Chart.grouped_bar ~title:"speedup over Relay" ~unit_label:"x"
       ~series:(List.map Engine.name engines)
       (List.rev !chart_rows));
  (* paper headline: MCFuser+Relay averages 1.45x over Relay and 1.33x over
     Ansor; MCFuser+Ansor is the fastest engine *)
  let avg pick =
    Mcf_util.Stats.geomean
      (List.map
         (fun (_, reports) ->
           let f name =
             (List.find (fun (r : Engine.report) -> r.engine = name) reports)
               .Engine.latency_s
           in
           pick f)
         results)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "  geomean MCFuser+Relay vs Relay: %.2fx (paper: 1.45x)\n"
       (avg (fun f -> f "Relay" /. f "MCFuser+Relay")));
  Buffer.add_string buf
    (Printf.sprintf
       "  geomean MCFuser+Relay vs Ansor: %.2fx (paper: 1.33x)\n"
       (avg (fun f -> f "Ansor" /. f "MCFuser+Relay")));
  Buffer.add_string buf
    (Printf.sprintf
       "  geomean MCFuser+Ansor vs BOLT:  %.2fx (paper: 3.66x; see \
        EXPERIMENTS.md on this figure's internal consistency)\n"
       (avg (fun f -> f "BOLT" /. f "MCFuser+Ansor")));
  Buffer.contents buf
