(** Correctness sweep — every tuned schedule checked on real data.

    The paper validates performance; this repository can also validate
    semantics: for a scaled-down instance of every evaluation workload
    (plus the extension chains), the tuner's winning schedule is executed
    by the tile-level interpreter on random inputs and compared against
    the naive reference operators.  The scaled instances keep the full
    structural variety (online softmax, flat tilings, dead loops, padding)
    while staying fast enough to run on every benchmark invocation. *)

type row = {
  vname : string;
  schedule : string;
  max_diff : float;
  pass : bool;
}

val compute : Mcf_gpu.Spec.t -> row list

val render : Mcf_gpu.Spec.t -> string

val title : string
