lib/experiments/exp_extension.mli: Mcf_gpu Mcf_ir
