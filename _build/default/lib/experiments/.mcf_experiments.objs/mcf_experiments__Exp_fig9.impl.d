lib/experiments/exp_fig9.ml: Buffer Engine Graph List Mcf_frontend Mcf_gpu Mcf_util Mcf_workloads Printf
