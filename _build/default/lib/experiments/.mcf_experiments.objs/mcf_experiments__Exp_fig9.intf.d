lib/experiments/exp_fig9.mli: Mcf_frontend Mcf_gpu Mcf_workloads
