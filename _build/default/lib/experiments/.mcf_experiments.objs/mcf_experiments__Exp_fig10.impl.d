lib/experiments/exp_fig10.ml: Array Buffer Float List Mcf_codegen Mcf_gpu Mcf_model Mcf_search Mcf_util Mcf_workloads Printf
