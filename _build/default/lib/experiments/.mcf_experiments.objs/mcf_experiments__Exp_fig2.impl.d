lib/experiments/exp_fig2.ml: Buffer List Mcf_baselines Mcf_gpu Mcf_util Printf
