lib/experiments/evalcache.mli: Mcf_baselines Mcf_gpu Mcf_ir
