lib/experiments/exp_fig10.mli: Mcf_gpu
