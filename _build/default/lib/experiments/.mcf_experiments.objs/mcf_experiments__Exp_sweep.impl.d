lib/experiments/exp_sweep.ml: Buffer Evalcache List Mcf_baselines Mcf_gpu Mcf_ir Mcf_util Printf
