lib/experiments/exp_verify.mli: Mcf_gpu
