lib/experiments/exp_extension.ml: Buffer Evalcache List Mcf_baselines Mcf_gpu Mcf_ir Mcf_util Printf
