lib/experiments/exp_fig8.mli: Mcf_baselines Mcf_gpu
