lib/experiments/exp_ablation.mli: Mcf_gpu
