lib/experiments/exp_motivation.mli: Mcf_gpu Mcf_workloads
