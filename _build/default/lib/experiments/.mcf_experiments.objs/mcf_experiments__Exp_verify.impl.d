lib/experiments/exp_verify.ml: Array Buffer Float List Mcf_gpu Mcf_interp Mcf_ir Mcf_search Mcf_tensor Mcf_util Mcf_workloads Printf
