lib/experiments/registry.ml: Exp_ablation Exp_extension Exp_fig10 Exp_fig11 Exp_fig2 Exp_fig7 Exp_fig8 Exp_fig9 Exp_motivation Exp_sweep Exp_tab4 Exp_verify List Mcf_gpu
