lib/experiments/exp_fig11.ml: Array Buffer List Mcf_codegen Mcf_gpu Mcf_model Mcf_search Mcf_util Mcf_workloads Printf
