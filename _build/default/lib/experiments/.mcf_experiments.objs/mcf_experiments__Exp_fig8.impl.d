lib/experiments/exp_fig8.ml: Buffer Evalcache List Mcf_baselines Mcf_gpu Mcf_util Mcf_workloads Printf
