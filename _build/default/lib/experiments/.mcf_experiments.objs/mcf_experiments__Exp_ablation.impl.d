lib/experiments/exp_ablation.ml: Buffer List Mcf_codegen Mcf_gpu Mcf_ir Mcf_model Mcf_search Mcf_util Mcf_workloads Option Printf String
