lib/experiments/exp_tab4.mli: Mcf_gpu
