lib/experiments/registry.mli:
