lib/experiments/exp_fig7.ml: Buffer Float Mcf_ir Mcf_search Mcf_util Printf
