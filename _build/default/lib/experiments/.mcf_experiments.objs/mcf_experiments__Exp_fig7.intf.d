lib/experiments/exp_fig7.mli: Mcf_gpu Mcf_search
