lib/experiments/exp_tab4.ml: Buffer Engine Evalcache Graph List Mcf_baselines Mcf_frontend Mcf_util Mcf_workloads Printf
