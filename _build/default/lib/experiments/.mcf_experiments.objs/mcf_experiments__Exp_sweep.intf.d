lib/experiments/exp_sweep.mli: Mcf_gpu
