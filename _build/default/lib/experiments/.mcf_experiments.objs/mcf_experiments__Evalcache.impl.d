lib/experiments/evalcache.ml: Hashtbl Mcf_baselines Mcf_gpu Mcf_ir Printf
