lib/experiments/exp_motivation.ml: Buffer List Mcf_frontend Mcf_gpu Mcf_ir Mcf_util Mcf_workloads Printf
