let table : (string, (Mcf_baselines.Backend.outcome, Mcf_baselines.Backend.failure) result) Hashtbl.t =
  Hashtbl.create 64

let run (backend : Mcf_baselines.Backend.t) (spec : Mcf_gpu.Spec.t)
    (chain : Mcf_ir.Chain.t) =
  let key =
    Printf.sprintf "%s|%s|%s" backend.name spec.name chain.Mcf_ir.Chain.cname
  in
  match Hashtbl.find_opt table key with
  | Some r -> r
  | None ->
    let r = backend.tune spec chain in
    Hashtbl.add table key r;
    r

let clear () = Hashtbl.reset table
