(** Fig. 10 — shared-memory estimation accuracy (§VI-E1).

    For candidates drawn from the Fig. 8 workloads' spaces (Rules 1-3
    applied; Rule 4 deliberately off so over-budget points remain), the
    eq. (1) estimate is compared with the code generator's actual
    allocation.  Quadrants relative to the 1.2 x Shm_max threshold
    (x-axis) and Shm_max (y-axis):

    - I: kept and launchable (correct);
    - II: kept but unlaunchable — wrongly kept, paper 8.2 %, later
      rejected at PTX lowering;
    - III: pruned and unlaunchable (correct);
    - IV: pruned but launchable — wrongly pruned, paper 1.2 %.

    The paper reports > 90 % of points in I + III and a ~40 % candidate
    reduction by Rule 4. *)

type stats = {
  total : int;
  q1 : int;
  q2 : int;
  q3 : int;
  q4 : int;
  rule4_prune_fraction : float;
}

val compute : ?per_workload:int -> Mcf_gpu.Spec.t -> stats * (float * float) list
(** Quadrant stats and the (estimate, actual) scatter, both normalized to
    Shm_max. *)

val render : Mcf_gpu.Spec.t -> string

val title : string
