(** The experiment registry: every paper table/figure (plus the ablation)
    as a named, runnable unit — shared by `bench/main.exe` and the CLI. *)

type experiment = {
  id : string;  (** e.g. "fig8a". *)
  description : string;
  run : unit -> string;  (** Rendered report. *)
}

val all : experiment list

val find : string -> experiment option

val ids : unit -> string list
