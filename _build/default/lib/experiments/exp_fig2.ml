type point = {
  m : int;
  k : int;
  ratio : float;
  phi : float;
  achieved_tflops : float;
}

let title = "Fig. 2: MatMul performance across K/M ratios (M*N*K = 1024^3)"

(* Theoretical compute/traffic ratio of a T x T x K tile (elements):
   2*T*T*K / (2*T*T + 2*T*K). *)
let phi_tile ~tile ~k =
  let t = float_of_int tile and k = float_of_int k in
  2.0 *. t *. t *. k /. ((2.0 *. t *. t) +. (2.0 *. t *. k))

let sweep = [ 8192; 4096; 2048; 1024; 512; 256 ]

let compute (spec : Mcf_gpu.Spec.t) =
  List.map
    (fun m ->
      let k = 1 lsl 30 / (m * m) in
      let kernel = Mcf_baselines.Op_kernels.gemm spec ~batch:1 ~m ~n:m ~k in
      let time =
        match Mcf_gpu.Sim.run ~noise:false spec kernel with
        | Ok v -> v.time_s
        | Error e -> failwith (Mcf_gpu.Sim.string_of_error e)
      in
      let flops = 2.0 *. float_of_int m *. float_of_int m *. float_of_int k in
      { m;
        k;
        ratio = float_of_int k /. float_of_int m;
        phi = phi_tile ~tile:256 ~k;
        achieved_tflops = flops /. time /. 1e12 })
    sweep

let render spec =
  let points = compute spec in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "device %s: roofline crossover P/W = %.0f FLOPs/byte\n\n"
       spec.Mcf_gpu.Spec.name
       (Mcf_gpu.Spec.roofline_ratio spec));
  let tbl =
    Mcf_util.Table.create
      ~headers:[ "K/M"; "M=N"; "K"; "phi (tile 256)"; "TFLOP/s"; "bound" ]
  in
  List.iter
    (fun p ->
      let bound =
        if p.phi < Mcf_gpu.Spec.roofline_ratio spec then "memory" else "compute"
      in
      Mcf_util.Table.add_row tbl
        [ Printf.sprintf "%.4g" p.ratio;
          string_of_int p.m;
          string_of_int p.k;
          Mcf_util.Table.fmt_float ~digits:1 p.phi;
          Mcf_util.Table.fmt_float ~digits:1 p.achieved_tflops;
          bound ])
    points;
  Buffer.add_string buf (Mcf_util.Table.render tbl);
  let log2 x = log x /. log 2.0 in
  Buffer.add_string buf
    (Mcf_util.Chart.line ~title:"throughput vs log2(K/M)" ~x_label:"log2(K/M)"
       [ ("TFLOP/s",
          List.map (fun p -> (log2 p.ratio, p.achieved_tflops)) points);
         ("phi", List.map (fun p -> (log2 p.ratio, p.phi)) points) ]);
  Buffer.add_string buf
    "shape check: throughput collapses as K/M falls below ~1 (paper: same \
     transition; the operator becomes memory-bound while total FLOPs stay \
     constant)\n";
  Buffer.contents buf
