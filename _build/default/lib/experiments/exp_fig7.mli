(** Fig. 7 — pruning the search space of the running example
    (GEMM chain, M = N = 1024, K = H = 512).

    Reports the funnel: 26 tiling expressions -> Rule 1 -> Rule 2, and
    ~1.09e8 raw candidates -> Rule 3 -> Rule 4 -> validity, ending around
    10^4 as in the paper.  (Our Rule 1 canonicalization is slightly
    stronger than the paper's, collapsing the expressions to 3 instead of
    5 — see DESIGN.md.) *)

val compute : Mcf_gpu.Spec.t -> Mcf_search.Space.funnel

val render : Mcf_gpu.Spec.t -> string

val title : string
