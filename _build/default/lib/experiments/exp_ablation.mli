(** Ablation study (beyond the paper's figures, justified by its design
    discussion): each MCFuser design choice is switched off in isolation
    and the resulting kernel time / tuning time compared against the full
    system on a representative workload mix.

    Variants:
    - [no-flat]: deep tiling only (Chimera's structural space, §III-A);
    - [no-dead-loop-elim]: hoisting without trivial-loop removal (the
      Ansor/Chimera rule, §III-B);
    - [no-hoisting]: memory statements stay at their default positions;
    - [no-alpha]: the performance model without the eq. (5) slowdown
      factor;
    - [model-only]: trust the analytical model, measure nothing (exposes
      the estimator error Fig. 11 quantifies);
    - [no-rule1/2]: structural pruning off (tuning-time blow-up with the
      same final kernel). *)

type variant = {
  vname : string;
  vdescription : string;
}

val variants : variant list

type cell = {
  kernel_time_s : float option;
  tuning_s : float option;
}

val compute :
  Mcf_gpu.Spec.t -> (string * (string * cell) list) list
(** Per workload, per variant. *)

val render : Mcf_gpu.Spec.t -> string

val title : string
