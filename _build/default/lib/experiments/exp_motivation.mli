(** §II-A motivation — the self-attention bottleneck across sequence
    lengths.

    The paper motivates MBCI fusion with Bert-Large at sequence lengths
    512/1024/2048: self-attention contributes only 11 %/14 %/19 % of the
    FLOPs but 39 %/51 %/61 % of the execution time.  This experiment
    regenerates that table on the simulator (eager per-operator execution),
    and shows why: the attention sub-graph's arithmetic intensity sits
    below the device roofline while the projections sit above it. *)

type row = {
  seq : int;
  flops_share : float;
  time_share : float;
  attention_intensity : float;  (** FLOPs/byte of the unfused sub-graph. *)
}

val compute : Mcf_gpu.Spec.t -> Mcf_workloads.Configs.bert_config -> row list

val render : Mcf_gpu.Spec.t -> string

val title : string
