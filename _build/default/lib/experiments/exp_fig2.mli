(** Fig. 2 — the MBCI transition.

    A single MatMul at constant work (M x N x K = 1024^3, M = N) swept
    across K/M ratios: the theoretical compute-to-traffic ratio φ for a
    256-tile falls with K, and once φ drops below 𝒫/𝒲 the achieved
    throughput collapses — the compute-intensive operator has become
    memory-bound. *)

type point = {
  m : int;
  k : int;
  ratio : float;  (** K/M. *)
  phi : float;  (** Theoretical FLOPs per byte at tile 256. *)
  achieved_tflops : float;  (** Simulator throughput of the best kernel. *)
}

val compute : Mcf_gpu.Spec.t -> point list

val render : Mcf_gpu.Spec.t -> string

val title : string
