(** Extension workloads — MBCI fusion beyond the paper's evaluation set.

    Three convolution+pointwise chains (im2col mapping) and three MLP
    (GEMM -> GELU -> GEMM) blocks, run through the same backend harness as
    Fig. 8: eager PyTorch, MCFuser-Chimera (deep tiling, data-movement
    objective) and MCFuser.  These exercise the unary-epilogue validity
    rules and the conv mapping under search, not just under unit tests. *)

type workload = {
  wname : string;
  chain : Mcf_ir.Chain.t;
}

val workloads : unit -> workload list

val render : Mcf_gpu.Spec.t -> string

val title : string
