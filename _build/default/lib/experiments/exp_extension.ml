type workload = {
  wname : string;
  chain : Mcf_ir.Chain.t;
}

let title = "Extension workloads: convolution and MLP chains"

let workloads () =
  [ { wname = "C1 (64x64, 16->32->32)";
      chain =
        Mcf_ir.Chain.conv_pointwise_chain ~height:66 ~width:66 ~c_in:16
          ~c_mid:32 ~c_out:32 ~ksize:3 () };
    { wname = "C2 (128x128, 32->64->64)";
      chain =
        Mcf_ir.Chain.conv_pointwise_chain ~height:130 ~width:130 ~c_in:32
          ~c_mid:64 ~c_out:64 ~ksize:3 () };
    { wname = "C3 (64x64, 64->64->128)";
      chain =
        Mcf_ir.Chain.conv_pointwise_chain ~height:66 ~width:66 ~c_in:64
          ~c_mid:64 ~c_out:128 ~ksize:3 () };
    { wname = "M1 (512x512x64x64)";
      chain = Mcf_ir.Chain.mlp_chain ~m:512 ~n:512 ~k:64 ~h:64 () };
    { wname = "M2 (1024x512x128x128)";
      chain = Mcf_ir.Chain.mlp_chain ~m:1024 ~n:512 ~k:128 ~h:128 () };
    { wname = "M3 (b4, 512x256x64x64)";
      chain = Mcf_ir.Chain.mlp_chain ~batch:4 ~m:512 ~n:256 ~k:64 ~h:64 () } ]

let backends =
  [ Mcf_baselines.Pytorch.backend;
    Mcf_baselines.Chimera.backend;
    Mcf_baselines.Mcfuser_backend.backend ]

let render spec =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "%s (on %s)\n\n" title spec.Mcf_gpu.Spec.name);
  let tbl =
    Mcf_util.Table.create
      ~headers:
        [ "workload"; "intensity"; "PyTorch"; "MCFuser-Chimera"; "MCFuser";
          "speedup" ]
  in
  List.iter
    (fun w ->
      let time (b : Mcf_baselines.Backend.t) =
        match Evalcache.run b spec w.chain with
        | Ok o -> Some o.time_s
        | Error _ -> None
      in
      let results = List.map time backends in
      let fmt = function
        | Some t -> Mcf_util.Table.fmt_time_s t
        | None -> "-"
      in
      let speedup =
        match (List.nth results 0, List.nth results 2) with
        | Some p, Some m -> Mcf_util.Table.fmt_float (p /. m) ^ "x"
        | _ -> "-"
      in
      let intensity =
        Mcf_ir.Chain.total_flops w.chain
        /. Mcf_ir.Chain.unfused_traffic_bytes w.chain
             ~elem_bytes:spec.elem_bytes
      in
      Mcf_util.Table.add_row tbl
        (w.wname
         :: Printf.sprintf "%.0f" intensity
         :: List.map fmt results
        @ [ speedup ]))
    (workloads ());
  Buffer.add_string buf (Mcf_util.Table.render tbl);
  Buffer.add_string buf
    "same machinery, new operators: every chain is memory-bound (intensity \
     below the roofline) and fuses profitably; the unary GELU epilogue \
     constrains valid schedules exactly as softmax does\n";
  Buffer.contents buf
