type t = { shape : int array; strides : int array; buf : float array }

let compute_strides shape =
  let n = Array.length shape in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * shape.(i + 1)
  done;
  strides

let numel_of_shape shape = Array.fold_left ( * ) 1 shape

let create shape =
  Array.iter
    (fun d -> if d < 0 then invalid_arg "Tensor.create: negative dimension")
    shape;
  let shape = Array.copy shape in
  { shape; strides = compute_strides shape; buf = Array.make (numel_of_shape shape) 0.0 }

let scalar v =
  let t = create [||] in
  t.buf.(0) <- v;
  t

let shape t = Array.copy t.shape
let rank t = Array.length t.shape
let numel t = Array.length t.buf
let data t = t.buf

let offset t idx =
  let n = Array.length t.shape in
  if Array.length idx <> n then invalid_arg "Tensor: rank mismatch";
  let off = ref 0 in
  for i = 0 to n - 1 do
    if idx.(i) < 0 || idx.(i) >= t.shape.(i) then
      invalid_arg
        (Printf.sprintf "Tensor: index %d out of bounds [0,%d) at axis %d"
           idx.(i) t.shape.(i) i);
    off := !off + (idx.(i) * t.strides.(i))
  done;
  !off

let get t idx = t.buf.(offset t idx)
let set t idx v = t.buf.(offset t idx) <- v
let fill t v = Array.fill t.buf 0 (Array.length t.buf) v

let copy t =
  { shape = Array.copy t.shape;
    strides = Array.copy t.strides;
    buf = Array.copy t.buf }

let of_array shape buf =
  if Array.length buf <> numel_of_shape shape then
    invalid_arg "Tensor.of_array: buffer size does not match shape";
  let shape = Array.copy shape in
  { shape; strides = compute_strides shape; buf = Array.copy buf }

(* Iterate multi-indices in row-major order, reusing one index buffer. *)
let iter_indices shape f =
  let n = Array.length shape in
  if numel_of_shape shape > 0 then begin
    let idx = Array.make n 0 in
    let rec bump () =
      f idx;
      let rec carry i =
        if i < 0 then false
        else begin
          idx.(i) <- idx.(i) + 1;
          if idx.(i) < shape.(i) then true
          else begin
            idx.(i) <- 0;
            carry (i - 1)
          end
        end
      in
      if carry (n - 1) then bump ()
    in
    bump ()
  end

let init shape f =
  let t = create shape in
  let pos = ref 0 in
  iter_indices t.shape (fun idx ->
      t.buf.(!pos) <- f idx;
      incr pos);
  t

let random rng shape =
  let t = create shape in
  for i = 0 to Array.length t.buf - 1 do
    t.buf.(i) <- Mcf_util.Rng.float rng 2.0 -. 1.0
  done;
  t

let map f t =
  let r = copy t in
  for i = 0 to Array.length r.buf - 1 do
    r.buf.(i) <- f r.buf.(i)
  done;
  r

let check_same_shape a b =
  if a.shape <> b.shape then invalid_arg "Tensor: shape mismatch"

let map2 f a b =
  check_same_shape a b;
  let r = copy a in
  for i = 0 to Array.length r.buf - 1 do
    r.buf.(i) <- f a.buf.(i) b.buf.(i)
  done;
  r

let max_abs_diff a b =
  check_same_shape a b;
  let m = ref 0.0 in
  for i = 0 to Array.length a.buf - 1 do
    m := Float.max !m (Float.abs (a.buf.(i) -. b.buf.(i)))
  done;
  !m

let approx_equal ?(tol = 1e-4) a b =
  check_same_shape a b;
  let ok = ref true in
  for i = 0 to Array.length a.buf - 1 do
    let scale = 1.0 +. Float.max (Float.abs a.buf.(i)) (Float.abs b.buf.(i)) in
    if Float.abs (a.buf.(i) -. b.buf.(i)) > tol *. scale then ok := false
  done;
  !ok

let to_string ?(max_elems = 8) t =
  let dims =
    t.shape |> Array.to_list |> List.map string_of_int |> String.concat "x"
  in
  let n = min max_elems (Array.length t.buf) in
  let elems =
    Array.sub t.buf 0 n |> Array.to_list
    |> List.map (Printf.sprintf "%.4g")
    |> String.concat "; "
  in
  let ellipsis = if Array.length t.buf > n then "; ..." else "" in
  Printf.sprintf "tensor[%s][%s%s]" dims elems ellipsis
