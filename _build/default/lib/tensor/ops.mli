(** Reference operator implementations.

    These are deliberately direct (triple-loop matmul, two-pass softmax):
    they define the semantics every fused schedule must reproduce.  Batched
    variants treat all leading axes beyond the last two as batch axes. *)

val matmul : Tensor.t -> Tensor.t -> Tensor.t
(** [matmul a b] for a: \[m,k\], b: \[k,n\] -> \[m,n\].
    @raise Invalid_argument on rank/shape mismatch. *)

val batch_matmul : Tensor.t -> Tensor.t -> Tensor.t
(** Leading axes are batch axes and must match exactly, e.g.
    \[b,h,m,k\] x \[b,h,k,n\] -> \[b,h,m,n\]. *)

val transpose_last2 : Tensor.t -> Tensor.t
(** Swap the two innermost axes. *)

val softmax : Tensor.t -> Tensor.t
(** Numerically-stable softmax over the last axis. *)

val scale : float -> Tensor.t -> Tensor.t

val add : Tensor.t -> Tensor.t -> Tensor.t
(** Elementwise sum; shapes must match. *)

val bias_add : Tensor.t -> Tensor.t -> Tensor.t
(** [bias_add x b] broadcasts a rank-1 bias over the last axis of [x]. *)

val relu : Tensor.t -> Tensor.t

val gelu : Tensor.t -> Tensor.t
(** tanh-approximation GELU, as used by BERT. *)

val layernorm : ?eps:float -> Tensor.t -> Tensor.t
(** Normalize over the last axis (gain 1, bias 0). *)

val attention : q:Tensor.t -> k:Tensor.t -> v:Tensor.t -> Tensor.t
(** Scaled dot-product attention: softmax(Q K^T / sqrt(d)) V with
    q: \[...,m,d\], k: \[...,n,d\], v: \[...,n,h\].  The reference for the
    fused self-attention chains. *)

val gemm_chain : a:Tensor.t -> b:Tensor.t -> d:Tensor.t -> Tensor.t
(** (A x B) x D — the reference for the fused two-GEMM chains. *)

val conv2d : input:Tensor.t -> weights:Tensor.t -> Tensor.t
(** Direct 2-D convolution, stride 1, valid padding.
    input: \[c_in, h, w\], weights: \[c_out, c_in, kh, kw\] ->
    \[c_out, h-kh+1, w-kw+1\]. *)

val im2col : input:Tensor.t -> kh:int -> kw:int -> Tensor.t
(** Patch extraction: \[c_in, h, w\] -> \[(h-kh+1)*(w-kw+1), c_in*kh*kw\],
    rows in row-major spatial order.  [conv2d] equals
    [im2col input x reshaped-weights] — the GEMM mapping that lets
    convolution chains ride the MBCI fusion machinery. *)

val conv_weights_matrix : Tensor.t -> Tensor.t
(** \[c_out, c_in, kh, kw\] -> \[c_in*kh*kw, c_out\], matching {!im2col}'s
    column order. *)
