let last2 t =
  let s = Tensor.shape t in
  let r = Array.length s in
  if r < 2 then invalid_arg "Ops: rank must be >= 2";
  (s.(r - 2), s.(r - 1))

let batch_shape t =
  let s = Tensor.shape t in
  Array.sub s 0 (Array.length s - 2)

let check_batches a b =
  if batch_shape a <> batch_shape b then
    invalid_arg "Ops: batch axes mismatch"

(* Iterate over all batch indices of a shape prefix. *)
let iter_batches bshape f =
  let n = Array.length bshape in
  let idx = Array.make n 0 in
  let total = Array.fold_left ( * ) 1 bshape in
  for _ = 1 to total do
    f idx;
    let rec carry i =
      if i >= 0 then begin
        idx.(i) <- idx.(i) + 1;
        if idx.(i) >= bshape.(i) then begin
          idx.(i) <- 0;
          carry (i - 1)
        end
      end
    in
    carry (n - 1)
  done

let with_last2 batch i j =
  let n = Array.length batch in
  let idx = Array.make (n + 2) 0 in
  Array.blit batch 0 idx 0 n;
  idx.(n) <- i;
  idx.(n + 1) <- j;
  idx

let batch_matmul a b =
  check_batches a b;
  let m, ka = last2 a in
  let kb, n = last2 b in
  if ka <> kb then invalid_arg "Ops.batch_matmul: inner dimension mismatch";
  let bshape = batch_shape a in
  let out = Tensor.create (Array.append bshape [| m; n |]) in
  iter_batches bshape (fun bi ->
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          let acc = ref 0.0 in
          for p = 0 to ka - 1 do
            acc :=
              !acc
              +. (Tensor.get a (with_last2 bi i p)
                 *. Tensor.get b (with_last2 bi p j))
          done;
          Tensor.set out (with_last2 bi i j) !acc
        done
      done);
  out

let matmul a b =
  if Tensor.rank a <> 2 || Tensor.rank b <> 2 then
    invalid_arg "Ops.matmul: expects rank-2 tensors";
  batch_matmul a b

let transpose_last2 t =
  let s = Tensor.shape t in
  let r = Array.length s in
  if r < 2 then invalid_arg "Ops.transpose_last2: rank must be >= 2";
  let out_shape = Array.copy s in
  out_shape.(r - 2) <- s.(r - 1);
  out_shape.(r - 1) <- s.(r - 2);
  Tensor.init out_shape (fun idx ->
      let src = Array.copy idx in
      src.(r - 2) <- idx.(r - 1);
      src.(r - 1) <- idx.(r - 2);
      Tensor.get t src)

let softmax t =
  let s = Tensor.shape t in
  let r = Array.length s in
  if r < 1 then invalid_arg "Ops.softmax: rank must be >= 1";
  let n = s.(r - 1) in
  let bshape = Array.sub s 0 (r - 1) in
  let out = Tensor.create s in
  iter_batches bshape (fun bi ->
      let at j =
        let idx = Array.make r 0 in
        Array.blit bi 0 idx 0 (r - 1);
        idx.(r - 1) <- j;
        idx
      in
      let m = ref neg_infinity in
      for j = 0 to n - 1 do
        m := Float.max !m (Tensor.get t (at j))
      done;
      let z = ref 0.0 in
      for j = 0 to n - 1 do
        z := !z +. exp (Tensor.get t (at j) -. !m)
      done;
      for j = 0 to n - 1 do
        Tensor.set out (at j) (exp (Tensor.get t (at j) -. !m) /. !z)
      done);
  out

let scale c t = Tensor.map (fun x -> c *. x) t
let add a b = Tensor.map2 ( +. ) a b

let bias_add x b =
  if Tensor.rank b <> 1 then invalid_arg "Ops.bias_add: bias must be rank 1";
  let s = Tensor.shape x in
  let r = Array.length s in
  if (Tensor.shape b).(0) <> s.(r - 1) then
    invalid_arg "Ops.bias_add: bias length mismatch";
  Tensor.init s (fun idx -> Tensor.get x idx +. Tensor.get b [| idx.(r - 1) |])

let relu = Tensor.map (fun x -> Float.max 0.0 x)

let gelu =
  let c = sqrt (2.0 /. Float.pi) in
  Tensor.map (fun x ->
      0.5 *. x *. (1.0 +. tanh (c *. (x +. (0.044715 *. x *. x *. x)))))

let layernorm ?(eps = 1e-5) t =
  let s = Tensor.shape t in
  let r = Array.length s in
  let n = s.(r - 1) in
  let bshape = Array.sub s 0 (r - 1) in
  let out = Tensor.create s in
  iter_batches bshape (fun bi ->
      let at j =
        let idx = Array.make r 0 in
        Array.blit bi 0 idx 0 (r - 1);
        idx.(r - 1) <- j;
        idx
      in
      let mu = ref 0.0 in
      for j = 0 to n - 1 do
        mu := !mu +. Tensor.get t (at j)
      done;
      let mu = !mu /. float_of_int n in
      let var = ref 0.0 in
      for j = 0 to n - 1 do
        let d = Tensor.get t (at j) -. mu in
        var := !var +. (d *. d)
      done;
      let denom = sqrt ((!var /. float_of_int n) +. eps) in
      for j = 0 to n - 1 do
        Tensor.set out (at j) ((Tensor.get t (at j) -. mu) /. denom)
      done);
  out

let attention ~q ~k ~v =
  let _, d = last2 q in
  let scores = batch_matmul q (transpose_last2 k) in
  let probs = softmax (scale (1.0 /. sqrt (float_of_int d)) scores) in
  batch_matmul probs v

let gemm_chain ~a ~b ~d = batch_matmul (batch_matmul a b) d

let conv2d ~input ~weights =
  let s_in = Tensor.shape input and s_w = Tensor.shape weights in
  if Array.length s_in <> 3 || Array.length s_w <> 4 then
    invalid_arg "Ops.conv2d: input [c,h,w], weights [co,ci,kh,kw]";
  let c_in = s_in.(0) and h = s_in.(1) and w = s_in.(2) in
  let c_out = s_w.(0) and kh = s_w.(2) and kw = s_w.(3) in
  if s_w.(1) <> c_in then invalid_arg "Ops.conv2d: channel mismatch";
  let ho = h - kh + 1 and wo = w - kw + 1 in
  if ho <= 0 || wo <= 0 then invalid_arg "Ops.conv2d: kernel larger than input";
  Tensor.init [| c_out; ho; wo |] (fun idx ->
      let co = idx.(0) and y = idx.(1) and x = idx.(2) in
      let acc = ref 0.0 in
      for ci = 0 to c_in - 1 do
        for dy = 0 to kh - 1 do
          for dx = 0 to kw - 1 do
            acc :=
              !acc
              +. (Tensor.get input [| ci; y + dy; x + dx |]
                 *. Tensor.get weights [| co; ci; dy; dx |])
          done
        done
      done;
      !acc)

let im2col ~input ~kh ~kw =
  let s = Tensor.shape input in
  if Array.length s <> 3 then invalid_arg "Ops.im2col: input [c,h,w]";
  let c_in = s.(0) and h = s.(1) and w = s.(2) in
  let ho = h - kh + 1 and wo = w - kw + 1 in
  if ho <= 0 || wo <= 0 then invalid_arg "Ops.im2col: kernel larger than input";
  Tensor.init [| ho * wo; c_in * kh * kw |] (fun idx ->
      let pixel = idx.(0) and col = idx.(1) in
      let y = pixel / wo and x = pixel mod wo in
      let ci = col / (kh * kw) in
      let rest = col mod (kh * kw) in
      let dy = rest / kw and dx = rest mod kw in
      Tensor.get input [| ci; y + dy; x + dx |])

let conv_weights_matrix weights =
  let s = Tensor.shape weights in
  if Array.length s <> 4 then
    invalid_arg "Ops.conv_weights_matrix: weights [co,ci,kh,kw]";
  let c_out = s.(0) and c_in = s.(1) and kh = s.(2) and kw = s.(3) in
  Tensor.init [| c_in * kh * kw; c_out |] (fun idx ->
      let col = idx.(0) and co = idx.(1) in
      let ci = col / (kh * kw) in
      let rest = col mod (kh * kw) in
      let dy = rest / kw and dx = rest mod kw in
      Tensor.get weights [| co; ci; dy; dx |])
