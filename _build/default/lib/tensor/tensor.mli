(** Dense row-major float tensors.

    These are the ground-truth values behind the compiler: the tile-level
    interpreter ({!Mcf_interp.Interp}) executes fused schedules on real data
    and compares against the reference operators in {!Ops}.  Storage is
    [float array] (fp32); traffic accounting elsewhere uses 2-byte elements
    to mirror the paper's fp16 tensors — the numerics here only serve
    correctness, not cost. *)

type t

val create : int array -> t
(** Zero-filled tensor of the given shape.  Rank 0 is allowed (scalar). *)

val init : int array -> (int array -> float) -> t
(** [init shape f] fills each multi-index with [f index]. *)

val scalar : float -> t
(** Rank-0 tensor. *)

val shape : t -> int array
(** Defensive copy of the shape. *)

val rank : t -> int

val numel : t -> int

val get : t -> int array -> float
(** @raise Invalid_argument on rank mismatch or out-of-bounds indices. *)

val set : t -> int array -> float -> unit

val fill : t -> float -> unit

val copy : t -> t

val data : t -> float array
(** The underlying buffer (shared, not copied); row-major layout. *)

val of_array : int array -> float array -> t
(** @raise Invalid_argument when the buffer size does not match the shape. *)

val random : Mcf_util.Rng.t -> int array -> t
(** Entries uniform in \[-1, 1). *)

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t
(** @raise Invalid_argument on shape mismatch. *)

val max_abs_diff : t -> t -> float
(** Largest elementwise absolute difference.
    @raise Invalid_argument on shape mismatch. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Relative-ish tolerance: |a-b| <= tol * (1 + max |a|, |b|).
    Default tol = 1e-4, loose enough for re-associated reductions. *)

val to_string : ?max_elems:int -> t -> string
(** Debug rendering: shape plus the first few entries. *)
