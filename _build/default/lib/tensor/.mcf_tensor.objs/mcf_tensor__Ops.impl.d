lib/tensor/ops.ml: Array Float Tensor
