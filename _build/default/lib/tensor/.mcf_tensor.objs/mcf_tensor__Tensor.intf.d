lib/tensor/tensor.mli: Mcf_util
