lib/tensor/tensor.ml: Array Float List Mcf_util Printf String
