lib/codegen/emit.ml: Axis Buffer Candidate Chain List Mcf_ir Mcf_util Printf Program String
