lib/codegen/alloc.mli: Mcf_gpu Mcf_ir
