lib/codegen/compile.mli: Mcf_gpu Mcf_ir
