lib/codegen/emit.mli: Mcf_ir
