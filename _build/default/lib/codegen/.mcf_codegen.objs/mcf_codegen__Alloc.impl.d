lib/codegen/alloc.ml: Axis Candidate Chain List Lower Mcf_gpu Mcf_ir Mcf_util Program
