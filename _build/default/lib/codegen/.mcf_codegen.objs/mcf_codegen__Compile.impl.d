lib/codegen/compile.ml: Alloc Mcf_gpu Mcf_ir Printf
