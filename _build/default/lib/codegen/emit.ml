open Mcf_ir

let buf_add = Buffer.add_string

let tile_const (a : Axis.t) = Printf.sprintf "T%s" (String.uppercase_ascii a.name)

let offs_expr (ts : Chain.tensor_spec) =
  (* Row-major offsets from the per-axis tile bases, e.g.
     (m0 + tl.arange(0, TM))[:, None] * K + (k0 + tl.arange(0, TK))[None, :] *)
  let rank = List.length ts.taxes in
  String.concat " + "
    (List.mapi
       (fun i (a : Axis.t) ->
         let arange =
           Printf.sprintf "(%s0 + tl.arange(0, %s))" a.name (tile_const a)
         in
         let bcast =
           if rank = 1 then arange
           else if i = 0 then arange ^ "[:, None]"
           else arange ^ "[None, :]"
         in
         let stride =
           if i = rank - 1 then "" else Printf.sprintf " * stride_%s_%s" ts.tname a.name
         in
         bcast ^ stride)
       ts.taxes)

let acc_name (ts : Chain.tensor_spec) = String.lowercase_ascii ts.tname ^ "_acc"
let reg_name (ts : Chain.tensor_spec) = String.lowercase_ascii ts.tname ^ "_tile"

let emit_stmt program buf indent stmt =
  let pad = String.make indent ' ' in
  let chain = program.Program.chain in
  match stmt with
  | Program.Load (ts, _) ->
    buf_add buf
      (Printf.sprintf "%s%s = tl.load(%s_ptr + %s, mask=%s_mask, other=0.0)\n"
         pad (reg_name ts) ts.tname (offs_expr ts)
         (String.lowercase_ascii ts.tname))
  | Program.Compute b ->
    let ins = List.map (fun (ts : Chain.tensor_spec) ->
        match ts.storage with
        | Chain.Input -> reg_name ts
        | Chain.Intermediate | Chain.Output -> acc_name ts)
        b.ins
    in
    (* A compute whose reduction loops all collapsed (trip 1) produces its
       tile in one shot; otherwise it accumulates across the live loop. *)
    let accumulates =
      List.exists
        (fun (a : Axis.t) -> Candidate.trip program.Program.cand a > 1)
        b.reduce_axes
    in
    buf_add buf
      (Printf.sprintf "%s%s %s tl.dot(%s)\n" pad (acc_name b.out)
         (if accumulates then "+=" else "=")
         (String.concat ", " ins))
  | Program.Epilogue b -> (
    match b.Chain.epilogue with
    | Chain.Softmax { sscale; _ } ->
      let acc = acc_name b.out in
      buf_add buf (Printf.sprintf "%s# online softmax update\n" pad);
      buf_add buf
        (Printf.sprintf "%sm_new = tl.maximum(m_i, tl.max(%s * %g, 1))\n" pad
           acc sscale);
      buf_add buf (Printf.sprintf "%scorr = tl.exp(m_i - m_new)\n" pad);
      buf_add buf
        (Printf.sprintf "%s%s = tl.exp(%s * %g - m_new[:, None])\n" pad acc acc
           sscale);
      buf_add buf (Printf.sprintf "%sl_i = l_i * corr + tl.sum(%s, 1)\n" pad acc);
      List.iter
        (fun (q : Chain.block) ->
          buf_add buf
            (Printf.sprintf "%s%s *= corr[:, None]\n" pad (acc_name q.out)))
        (Chain.consumers_of chain b.out);
      buf_add buf (Printf.sprintf "%sm_i = m_new\n" pad)
    | Chain.Scale c ->
      buf_add buf (Printf.sprintf "%s%s *= %g\n" pad (acc_name b.out) c)
    | Chain.Unary { uname; _ } ->
      buf_add buf
        (Printf.sprintf "%s%s = %s(%s)\n" pad (acc_name b.out) uname
           (acc_name b.out))
    | Chain.No_epilogue -> ())
  | Program.Store (ts, p) ->
    let chain_softmax =
      List.exists
        (fun (inp : Chain.tensor_spec) ->
          match inp.storage with
          | Chain.Intermediate -> true
          | Chain.Input | Chain.Output -> false)
        p.Chain.ins
    in
    ignore chain_softmax;
    buf_add buf
      (Printf.sprintf "%stl.store(%s_ptr + %s, %s, mask=%s_mask)\n" pad
         ts.tname (offs_expr ts) (acc_name ts)
         (String.lowercase_ascii ts.tname))

let triton_kernel (p : Program.t) =
  let chain = p.Program.chain in
  let buf = Buffer.create 1024 in
  let tensors = chain.tensors in
  let ptr_args =
    tensors
    |> List.filter (fun (ts : Chain.tensor_spec) ->
           ts.storage <> Chain.Intermediate)
    |> List.map (fun (ts : Chain.tensor_spec) -> ts.tname ^ "_ptr")
  in
  let const_args =
    List.map (fun a -> tile_const a ^ ": tl.constexpr") chain.axes
  in
  buf_add buf "@triton.jit\n";
  buf_add buf
    (Printf.sprintf "def %s_fused(%s,\n                %s):\n" chain.cname
       (String.concat ", " ptr_args)
       (String.concat ", " const_args));
  buf_add buf (Printf.sprintf "    # tiling expression: %s\n"
                 (Candidate.to_string p.Program.cand));
  (match p.grid_axes with
  | [] -> buf_add buf "    pid = tl.program_id(0)  # single-block kernel\n"
  | axes ->
    buf_add buf "    pid = tl.program_id(0)\n";
    List.iteri
      (fun i (a : Axis.t) ->
        let trips = Candidate.trip p.Program.cand a in
        if i = List.length axes - 1 then
          buf_add buf
            (Printf.sprintf "    %s0 = (pid %% %d) * %s\n" a.name trips
               (tile_const a))
        else begin
          buf_add buf
            (Printf.sprintf "    %s0 = (pid // %d) %% %d * %s\n" a.name
               (List.fold_left
                  (fun acc x -> acc * Candidate.trip p.Program.cand x)
                  1
                  (Mcf_util.Listx.drop (i + 1) axes))
               trips (tile_const a));
          ()
        end)
      axes);
  (* accumulators *)
  List.iter
    (fun (b : Chain.block) ->
      let m, n =
        match b.out.taxes with
        | [ a1; a2 ] -> (tile_const a1, tile_const a2)
        | [ a1 ] -> (tile_const a1, "1")
        | _ -> ("TM", "TN")
      in
      buf_add buf
        (Printf.sprintf "    %s = tl.zeros((%s, %s), dtype=tl.float32)\n"
           (acc_name b.out) m n);
      match b.Chain.epilogue with
      | Chain.Softmax _ ->
        buf_add buf
          (Printf.sprintf
             "    m_i = tl.full((%s,), float('-inf'), dtype=tl.float32)\n" m);
        buf_add buf
          (Printf.sprintf "    l_i = tl.zeros((%s,), dtype=tl.float32)\n" m)
      | Chain.No_epilogue | Chain.Scale _ | Chain.Unary _ -> ())
    chain.blocks;
  let rec emit indent nodes =
    List.iter
      (function
        | Program.Stmt s -> emit_stmt p buf indent s
        | Program.Loop l ->
          buf_add buf
            (Printf.sprintf "%sfor %s_i in range(%d):\n"
               (String.make indent ' ') l.Program.laxis.Axis.name
               l.Program.extent);
          buf_add buf
            (Printf.sprintf "%s%s0 = %s_i * %s\n"
               (String.make (indent + 4) ' ')
               l.Program.laxis.Axis.name l.Program.laxis.Axis.name
               (tile_const l.Program.laxis));
          emit (indent + 4) l.Program.body)
      nodes
  in
  emit 4 p.Program.roots;
  if Program.online_softmax p then
    buf_add buf "    # final normalization folded into the store above\n";
  Buffer.contents buf

let launch_stub (p : Program.t) =
  let chain = p.Program.chain in
  let blocks = Program.grid_blocks p in
  let buf = Buffer.create 256 in
  buf_add buf (Printf.sprintf "def launch_%s(%s):\n" chain.cname
                 (String.concat ", "
                    (List.map
                       (fun (ts : Chain.tensor_spec) ->
                         String.lowercase_ascii ts.tname)
                       (Chain.input_tensors chain))));
  buf_add buf (Printf.sprintf "    grid = (%d,)  # %s x batch %d\n" blocks
                 (String.concat " * "
                    (List.map
                       (fun (a : Axis.t) ->
                         Printf.sprintf "%s/%d" a.name
                           (Candidate.tile p.Program.cand a))
                       p.grid_axes))
                 chain.batch);
  List.iter
    (fun (a : Axis.t) ->
      buf_add buf
        (Printf.sprintf "    %s = %d\n" (tile_const a)
           (Candidate.tile p.Program.cand a)))
    chain.axes;
  buf_add buf
    (Printf.sprintf "    %s_fused[grid](..., %s)\n" chain.cname
       (String.concat ", " (List.map tile_const chain.axes)));
  Buffer.contents buf
