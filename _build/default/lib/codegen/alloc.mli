(** "Actual" shared-memory allocation — the code generator's side of the
    Fig. 10 comparison (the paper measures it with the NVPTX backend; we
    compute it from the same allocation rules Triton applies):

    - every tile row is padded to dodge shared-memory bank conflicts;
    - input tiles streamed inside a loop are double-buffered (software
      pipelining with [num_stages = 2]), falling back to single buffers
      when the padded total would not fit the device limit;
    - resident intermediate/accumulator tiles appear once per Rule-2
      multiplicity, except that output accumulators small enough for the
      register file live in registers (as `tl.dot` accumulators do) and
      occupy no shared memory at all — the one case where the actual
      allocation undercuts the eq. (1) estimate (quadrant IV of Fig. 10);
    - online-softmax schedules keep fp32 running-max/sum vectors (plus a
      correction temporary) per softmax row.

    The result is what the simulator charges against the occupancy limit;
    candidates whose actual allocation exceeds the per-block maximum fail
    to launch (the "eliminated during PTX code lowering" cases). *)

type detail = {
  tiles_bytes : int;  (** Padded tile storage, single-buffered. *)
  double_buffer_bytes : int;  (** Extra staging copies (0 after fallback). *)
  softmax_bytes : int;  (** Running statistics vectors. *)
  total_bytes : int;
}

val row_pad_bytes : int
(** Bank-conflict padding added to each tile row (16 B = 8 fp16 lanes). *)

val register_accumulator_elems : int
(** Output accumulators up to this many elements (fp32, across the
    block's register file) never touch shared memory. *)

val detail : Mcf_gpu.Spec.t -> Mcf_ir.Lower.t -> detail

val actual_bytes : Mcf_gpu.Spec.t -> Mcf_ir.Lower.t -> int
(** [total_bytes] of {!detail}. *)
