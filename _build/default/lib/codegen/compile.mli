(** Candidate compilation: validity check + allocation + kernel packaging.

    This is the stand-in for MCFuser's Triton -> PTX -> TVM runtime path:
    a candidate either compiles to a simulator kernel or is rejected the
    way the real toolchain would reject it. *)

type error =
  | Invalid_schedule of Mcf_ir.Program.invalid
  | Launch_impossible of { smem : int; limit : int }
      (** Actual allocation exceeds the per-block shared-memory maximum —
          the kernel cannot launch on this device. *)

val compile :
  Mcf_gpu.Spec.t -> Mcf_ir.Lower.t -> (Mcf_gpu.Kernel.t, error) result

val compile_candidate :
  ?rule1:bool ->
  ?dead_loop_elim:bool ->
  ?hoisting:bool ->
  Mcf_gpu.Spec.t ->
  Mcf_ir.Chain.t ->
  Mcf_ir.Candidate.t ->
  (Mcf_gpu.Kernel.t, error) result
(** Lower (with the device's element size) then [compile]. *)

val string_of_error : error -> string
