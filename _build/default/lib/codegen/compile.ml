type error =
  | Invalid_schedule of Mcf_ir.Program.invalid
  | Launch_impossible of { smem : int; limit : int }

let string_of_error = function
  | Invalid_schedule i -> Mcf_ir.Program.string_of_invalid i
  | Launch_impossible { smem; limit } ->
    Printf.sprintf "kernel needs %d B shared memory, device block limit is %d B"
      smem limit

let compile (spec : Mcf_gpu.Spec.t) (l : Mcf_ir.Lower.t) =
  match l.validity with
  | Error i -> Error (Invalid_schedule i)
  | Ok () ->
    let smem = Alloc.actual_bytes spec l in
    if smem > spec.smem_per_block then
      Error (Launch_impossible { smem; limit = spec.smem_per_block })
    else Ok (Mcf_ir.Lower.to_kernel l ~smem_bytes:smem)

let compile_candidate ?rule1 ?dead_loop_elim ?hoisting spec chain cand =
  let l =
    Mcf_ir.Lower.lower ?rule1 ?dead_loop_elim ?hoisting
      ~elem_bytes:spec.Mcf_gpu.Spec.elem_bytes chain cand
  in
  compile spec l
