open Mcf_ir

type detail = {
  tiles_bytes : int;
  double_buffer_bytes : int;
  softmax_bytes : int;
  total_bytes : int;
}

let row_pad_bytes = 16

(* Padded bytes of one tile: rows x (row bytes + bank padding). *)
let padded_tile_bytes (l : Lower.t) (ts : Chain.tensor_spec) =
  let cand = l.program.Program.cand in
  let row_elems =
    match List.rev ts.taxes with
    | [] -> 1
    | last :: _ -> Candidate.tile cand last
  in
  let total_elems =
    List.fold_left (fun acc a -> acc * Candidate.tile cand a) 1 ts.taxes
  in
  let rows = total_elems / max 1 row_elems in
  rows * ((row_elems * l.elem_bytes) + row_pad_bytes)

let softmax_stats_bytes (l : Lower.t) =
  let cand = l.program.Program.cand in
  let chain = l.program.Program.chain in
  Mcf_util.Listx.sum_by
    (fun (b : Chain.block) ->
      match b.Chain.epilogue with
      | Chain.Softmax { saxis; _ } ->
        let rows =
          List.fold_left
            (fun acc (a : Axis.t) ->
              if Axis.equal a saxis then acc else acc * Candidate.tile cand a)
            1 b.out.taxes
        in
        (* running max + running sum + correction temp, fp32 each *)
        float_of_int (3 * 4 * rows)
      | Chain.No_epilogue | Chain.Scale _ | Chain.Unary _ -> 0.0)
    chain.blocks
  |> int_of_float

(* tl.dot accumulators live in the register file; a 128 x 256 fp32
   accumulator (32 Ki elements) spread over the block's threads still fits
   the 256 KiB register budget. *)
let register_accumulator_elems = 32768

let lives_in_registers (l : Lower.t) (r : Lower.residency_item) =
  let cand = l.program.Program.cand in
  let elems =
    List.fold_left (fun acc a -> acc * Candidate.tile cand a)
      1 r.rtensor.taxes
  in
  r.rtensor.storage = Chain.Output
  && elems * r.mult <= register_accumulator_elems

let detail (spec : Mcf_gpu.Spec.t) (l : Lower.t) =
  let tiles_bytes =
    List.fold_left
      (fun acc (r : Lower.residency_item) ->
        if lives_in_registers l r then acc
        else acc + (padded_tile_bytes l r.rtensor * r.mult))
      0 l.residency
  in
  let db_candidate =
    List.fold_left
      (fun acc (r : Lower.residency_item) ->
        if r.double_buffered then acc + (padded_tile_bytes l r.rtensor * r.mult)
        else acc)
      0 l.residency
  in
  let softmax_bytes = softmax_stats_bytes l in
  (* Try num_stages=2 for streamed inputs; fall back to single buffering
     when the pipelined allocation would not launch. *)
  let with_db = tiles_bytes + db_candidate + softmax_bytes in
  let double_buffer_bytes =
    if with_db <= spec.smem_per_block then db_candidate else 0
  in
  let total_bytes = tiles_bytes + double_buffer_bytes + softmax_bytes in
  { tiles_bytes; double_buffer_bytes; softmax_bytes; total_bytes }

let actual_bytes spec l = (detail spec l).total_bytes
