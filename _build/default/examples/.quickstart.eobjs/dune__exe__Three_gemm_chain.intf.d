examples/three_gemm_chain.mli:
