examples/quickstart.mli:
