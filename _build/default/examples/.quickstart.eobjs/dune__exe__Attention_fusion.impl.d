examples/attention_fusion.ml: List Mcf_baselines Mcf_codegen Mcf_gpu Mcf_ir Mcf_search Mcf_util Mcf_workloads Option Printf
