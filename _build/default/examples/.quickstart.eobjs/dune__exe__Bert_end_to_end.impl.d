examples/bert_end_to_end.ml: Engine Graph List Mcf_frontend Mcf_gpu Mcf_ir Mcf_util Mcf_workloads Opgraph Printf
