examples/quickstart.ml: Array Format List Mcf_baselines Mcf_gpu Mcf_interp Mcf_ir Mcf_search Mcf_tensor Mcf_util Printf
