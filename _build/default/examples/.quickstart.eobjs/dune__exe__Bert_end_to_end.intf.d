examples/bert_end_to_end.mli:
