examples/conv_fusion.ml: Array Format Mcf_baselines Mcf_gpu Mcf_interp Mcf_ir Mcf_search Mcf_tensor Mcf_util Printf
