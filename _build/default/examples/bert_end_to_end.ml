(* End-to-end model compilation: BERT with MCFuser handling the MBCI
   sub-graphs.

     dune exec examples/bert_end_to_end.exe

   Builds the BERT-Base encoder graph, shows the partitioner's view
   (which nodes are MBCI), and runs the five engines of §VI-C —
   Relay, BOLT, Ansor, MCFuser+Relay, MCFuser+Ansor — reporting forward
   latency and tuning cost. *)

open Mcf_frontend

let () =
  let spec = Mcf_gpu.Spec.a100 in
  let cfg = Mcf_workloads.Configs.bert_base in
  let graph = Graph.bert cfg in
  Printf.printf "model: %s — %d layers, hidden %d, %d heads, seq %d\n"
    cfg.bname cfg.layers cfg.hidden cfg.bheads cfg.seq;
  Printf.printf "graph: %d operators, %.1f GFLOPs per forward pass\n\n"
    (List.length graph.ops) (graph.flops /. 1e9);

  (* the SV-B partitioner on the imported operator graph of one layer:
     pattern-match MBCI sub-graphs, leave the rest to the host compiler *)
  Printf.printf "imported operator graph (one encoder layer):\n";
  let layer = Opgraph.bert_layer cfg in
  print_string (Opgraph.to_string layer);
  let partitioned, r = Opgraph.partition spec layer in
  Printf.printf "\nafter MBCI partitioning:\n";
  print_string (Opgraph.to_string partitioned);
  Printf.printf
    "\n%d attention pattern fused; %d candidate chain rejected as \
     compute-bound (the FFN: its arithmetic intensity %.0f FLOPs/B sits \
     above the %.0f roofline, so fusion cannot help it)\n"
    r.fused_attention r.rejected_compute_bound
    (let c = Mcf_ir.Chain.mlp_chain ~m:cfg.seq ~n:cfg.intermediate
               ~k:cfg.hidden ~h:cfg.hidden () in
     Mcf_ir.Chain.total_flops c
     /. Mcf_ir.Chain.unfused_traffic_bytes c ~elem_bytes:spec.elem_bytes)
    (Mcf_gpu.Spec.roofline_ratio spec);
  Printf.printf
    "\nself-attention: %.0f%% of model FLOPs, %.0f%% of eager time — the \
     MBCI gap the paper targets\n\n"
    (100.0 *. Engine.attention_fraction spec graph ~flops_fraction:true)
    (100.0 *. Engine.attention_fraction spec graph ~flops_fraction:false);

  let engines =
    [ Engine.Relay_engine;
      Engine.Bolt_engine;
      Engine.Ansor_engine;
      Engine.Mcfuser_with Engine.Relay_engine;
      Engine.Mcfuser_with Engine.Ansor_engine ]
  in
  let tbl =
    Mcf_util.Table.create
      ~headers:[ "engine"; "latency"; "vs Relay"; "attention"; "kernels"; "tuning" ]
  in
  let relay = Engine.run Engine.Relay_engine spec graph in
  List.iter
    (fun kind ->
      let r = Engine.run kind spec graph in
      Mcf_util.Table.add_row tbl
        [ r.engine;
          Mcf_util.Table.fmt_time_s r.latency_s;
          Mcf_util.Table.fmt_float (relay.latency_s /. r.latency_s) ^ "x";
          Printf.sprintf "%.0f%%" (100.0 *. r.attention_s /. r.latency_s);
          string_of_int r.kernel_launches;
          Mcf_util.Table.fmt_time_s r.tuning_virtual_s ])
    engines;
  print_string (Mcf_util.Table.render tbl);
  print_newline ();
  Printf.printf
    "MCFuser replaces the %d-kernel unfused attention with one fused kernel \
     per layer and leaves the rest of the graph to the host compiler.\n"
    (relay.kernel_launches / cfg.layers - (Engine.run (Engine.Mcfuser_with Engine.Relay_engine) spec graph).kernel_launches / cfg.layers + 1)
